package conformance

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adamant/internal/netem/chaos"
)

var update = flag.Bool("update", false, "rewrite the crucible golden hash file")

const goldenHashFile = "testdata/crucible_hashes.txt"

// goldenCells is the fixed sub-matrix whose outcome hashes are pinned in
// testdata: every protocol through a calm run, a heavy partition, and
// permanent crashes — plus the full hot-swap matrix (calm switch, switch at
// loss peak, switch at partition heal, flapping) for every protocol.
func goldenCells() []CrucibleScenario {
	cells := CrucibleCells(
		DefaultCrucibleSpecs(),
		[]chaos.Scenario{chaos.CalmControl(), chaos.SplitBrain(), chaos.Cascade()},
		[]int64{1},
	)
	cells = append(cells, SwitchCells(DefaultCrucibleSpecs(), []int64{1})...)
	// Sharded-engine cells carry /shards=N in their Name and so get their
	// own golden lines; the classic corpus above is untouched. Width
	// invariance (TestCrucibleShardWidthInvariance) makes the worker count
	// recorded here arbitrary.
	sharded := CrucibleCells(
		DefaultCrucibleSpecs(),
		[]chaos.Scenario{chaos.CalmControl(), chaos.Cascade()},
		[]int64{1},
	)
	for i := range sharded {
		sharded[i].Shards = 4
	}
	return append(cells, sharded...)
}

// TestCrucibleJobsDeterminism pins that the worker-pool width changes
// wall-clock time only: the same cells run at -jobs 1 and -jobs 8 must
// produce byte-identical outcome hashes, cell for cell.
func TestCrucibleJobsDeterminism(t *testing.T) {
	cells := CrucibleCells(
		DefaultCrucibleSpecs(),
		[]chaos.Scenario{chaos.SplitBrain(), chaos.Churn()},
		[]int64{1},
	)
	cells = append(cells, SwitchCells(DefaultCrucibleSpecs(), []int64{1})...)
	serial := RunCrucibleMatrix(cells, 1, nil)
	wide := RunCrucibleMatrix(cells, 8, nil)
	for i := range cells {
		if serial[i].Err != nil || wide[i].Err != nil {
			t.Fatalf("%s: jobs=1 err=%v, jobs=8 err=%v", cells[i].Name(), serial[i].Err, wide[i].Err)
		}
		if serial[i].Hash != wide[i].Hash {
			t.Errorf("%s: hash differs across worker widths: jobs=1 %.12s, jobs=8 %.12s",
				cells[i].Name(), serial[i].Hash, wide[i].Hash)
		}
	}
}

// TestCrucibleGoldenHashes pins the exact outcome hash of a fixed cell
// sub-matrix against testdata. Any behavioral drift in the simulator, the
// netem fault knobs, the chaos engine, or a protocol implementation changes
// a hash and fails here; run with -update after an intentional change.
func TestCrucibleGoldenHashes(t *testing.T) {
	cells := goldenCells()
	var lines []string
	got := make(map[string]string, len(cells))
	for _, cs := range cells {
		out, err := ExecuteCrucible(cs)
		if err != nil {
			t.Fatalf("%s: %v", cs.Name(), err)
		}
		got[cs.Name()] = out.Hash
		lines = append(lines, fmt.Sprintf("%s %s", cs.Name(), out.Hash))
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenHashFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenHashFile, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d hashes to %s", len(lines), goldenHashFile)
		return
	}
	data, err := os.ReadFile(goldenHashFile)
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cells, matrix has %d (run with -update)", len(want), len(got))
	}
	for name, h := range got {
		switch wantHash, ok := want[name]; {
		case !ok:
			t.Errorf("%s: no golden hash recorded (run with -update)", name)
		case wantHash != h:
			t.Errorf("%s: outcome drifted from golden: got %.16s, want %.16s", name, h, wantHash)
		}
	}
}
