package conformance

import (
	"testing"

	"adamant/internal/transport"
)

// The protocol matrix: every registered protocol with its reliability
// obligations. Best-effort multicast must deliver what the network gives it
// (~95% at 5% loss); the recovery protocols owe (nearly) everything.
var matrix = []struct {
	name          string
	spec          transport.Spec
	minLossless   float64 // reliability floor with no loss
	minAt5PctLoss float64 // reliability floor at 5% end-host loss
	maxAt5PctLoss float64 // ceiling, to catch accidental duplication
}{
	{
		name:          "bemcast",
		spec:          transport.Spec{Name: "bemcast"},
		minLossless:   100,
		minAt5PctLoss: 90,
		maxAt5PctLoss: 98, // must NOT recover: it is the no-recovery baseline
	},
	{
		name:          "nakcast-1ms",
		spec:          transport.Spec{Name: "nakcast", Params: transport.Params{"timeout": "1ms"}},
		minLossless:   100,
		minAt5PctLoss: 99.9,
		maxAt5PctLoss: 100,
	},
	{
		name:          "nakcast-25ms",
		spec:          transport.Spec{Name: "nakcast", Params: transport.Params{"timeout": "25ms"}},
		minLossless:   100,
		minAt5PctLoss: 99.9,
		maxAt5PctLoss: 100,
	},
	{
		name:          "nakcast-unordered",
		spec:          transport.Spec{Name: "nakcast", Params: transport.Params{"timeout": "1ms", "unordered": "1"}},
		minLossless:   100,
		minAt5PctLoss: 99.9,
		maxAt5PctLoss: 100,
	},
	{
		name:          "ricochet-r4c3",
		spec:          transport.Spec{Name: "ricochet", Params: transport.Params{"r": "4", "c": "3"}},
		minLossless:   100,
		minAt5PctLoss: 98.5,
		maxAt5PctLoss: 100,
	},
	{
		name:          "ricochet-r8c3",
		spec:          transport.Spec{Name: "ricochet", Params: transport.Params{"r": "8", "c": "3"}},
		minLossless:   100,
		minAt5PctLoss: 97.5,
		maxAt5PctLoss: 100,
	},
	{
		name:          "ackcast",
		spec:          transport.Spec{Name: "ackcast", Params: transport.Params{"window": "64", "rto": "20ms"}},
		minLossless:   100,
		minAt5PctLoss: 99.9,
		maxAt5PctLoss: 100,
	},
}

func TestLossless(t *testing.T) {
	for _, m := range matrix {
		m := m
		t.Run(m.name, func(t *testing.T) {
			Check(t, Scenario{Spec: m.spec, Seed: 7}, m.minLossless)
		})
	}
}

func TestFivePercentLoss(t *testing.T) {
	for _, m := range matrix {
		m := m
		t.Run(m.name, func(t *testing.T) {
			sc := Scenario{Spec: m.spec, LossPct: 5, Samples: 600, Seed: 11}
			Check(t, sc, m.minAt5PctLoss)
			out, err := Execute(sc)
			if err != nil {
				t.Fatal(err)
			}
			for i, ds := range out.Deliveries {
				rel := 100 * float64(len(ds)) / 600
				if rel > m.maxAt5PctLoss {
					t.Errorf("receiver %d reliability %.2f%% above ceiling %.2f%%",
						i, rel, m.maxAt5PctLoss)
				}
			}
		})
	}
}

func TestSingleReceiver(t *testing.T) {
	// Degenerate group: no peers for lateral repair, no ACK aggregation.
	for _, m := range matrix {
		m := m
		t.Run(m.name, func(t *testing.T) {
			min := m.minAt5PctLoss
			if m.spec.Name == "ricochet" {
				min = 90 // no peers -> no recovery at all
			}
			Check(t, Scenario{Spec: m.spec, Receivers: 1, LossPct: 5, Samples: 400, Seed: 13}, min)
		})
	}
}

func TestHighRate(t *testing.T) {
	// 1 kHz pushes the CPU/queueing model; nothing may be duplicated or
	// corrupted.
	for _, m := range matrix {
		m := m
		t.Run(m.name, func(t *testing.T) {
			Check(t, Scenario{Spec: m.spec, RateHz: 1000, Samples: 500, LossPct: 2, Seed: 17},
				minFor(m.name))
		})
	}
}

func minFor(name string) float64 {
	switch name {
	case "bemcast":
		return 90
	case "ricochet-r8c3", "ricochet-r4c3":
		return 97
	default:
		return 99.5
	}
}

func TestDeterministicReplay(t *testing.T) {
	for _, m := range matrix {
		m := m
		t.Run(m.name, func(t *testing.T) {
			CheckDeterministic(t, Scenario{Spec: m.spec, LossPct: 5, Samples: 200, Seed: 19})
		})
	}
}
