package fountcast_test

import (
	"strings"
	"testing"

	"adamant/internal/transport"
	"adamant/internal/transport/fountcast"
)

// The canonical Spec helper must round-trip through ParseSpec and back to
// the same canonical string, and ParseOptions must accept what it emits.
func TestSpecRoundTrip(t *testing.T) {
	tests := []struct {
		k, oh int
		want  string
	}{
		{8, 25, "fountcast(k=8,oh=25)"},
		{1, 0, "fountcast(k=1,oh=0)"},
		{64, 100, "fountcast(k=64,oh=100)"},
		{16, 400, "fountcast(k=16,oh=400)"},
	}
	for _, tt := range tests {
		spec := fountcast.Spec(tt.k, tt.oh)
		if got := spec.String(); got != tt.want {
			t.Errorf("Spec(%d,%d).String() = %q, want %q", tt.k, tt.oh, got, tt.want)
		}
		parsed, err := transport.ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec.String(), err)
		}
		if parsed.String() != tt.want {
			t.Errorf("round-trip %q -> %q", tt.want, parsed.String())
		}
		o, err := fountcast.ParseOptions(parsed.Params)
		if err != nil {
			t.Fatalf("ParseOptions(%q): %v", tt.want, err)
		}
		if o.K != tt.k || o.OverheadPct != tt.oh {
			t.Errorf("options (k=%d,oh=%d), want (k=%d,oh=%d)", o.K, o.OverheadPct, tt.k, tt.oh)
		}
	}
}

func TestParseOptionsBoundaries(t *testing.T) {
	parse := func(s string) (fountcast.Options, error) {
		t.Helper()
		spec, err := transport.ParseSpec(s)
		if err != nil {
			return fountcast.Options{}, err
		}
		return fountcast.ParseOptions(spec.Params)
	}

	// Legal boundary points.
	for _, s := range []string{
		"fountcast(k=1,oh=0)",    // smallest block, no repair
		"fountcast(k=64,oh=100)", // largest block, 1:1 repair
		"fountcast(k=8,oh=400)",  // max overhead
		"fountcast",              // all defaults
		"fountcast(hold=1ms)",
	} {
		if _, err := parse(s); err != nil {
			t.Errorf("%q rejected: %v", s, err)
		}
	}
	o, err := parse("fountcast")
	if err != nil {
		t.Fatal(err)
	}
	if o.K != fountcast.DefaultK || o.OverheadPct != fountcast.DefaultOverheadPct ||
		o.HBInterval != fountcast.DefaultHBInterval || o.Hold != fountcast.DefaultHold {
		t.Errorf("defaults = %+v", o)
	}

	// Out-of-range and malformed values.
	for _, tt := range []struct{ spec, wantErr string }{
		{"fountcast(k=0)", "k=0"},
		{"fountcast(k=65)", "k=65"},
		{"fountcast(k=-3)", "k=-3"},
		{"fountcast(oh=-1)", "oh=-1"},
		{"fountcast(oh=401)", "oh=401"},
		{"fountcast(k=eight)", "eight"},
		{"fountcast(oh=25%)", "25%"},
		{"fountcast(hb=0s)", "non-positive"},
		{"fountcast(hold=-5ms)", "non-positive"},
		{"fountcast(hb=soon)", "soon"},
	} {
		if _, err := parse(tt.spec); err == nil {
			t.Errorf("%q accepted", tt.spec)
		} else if !strings.Contains(err.Error(), tt.wantErr) {
			t.Errorf("%q error %q does not mention %q", tt.spec, err, tt.wantErr)
		}
	}
}

// The registry factory must enforce the same bounds when building
// instances straight from a spec.
func TestFactoryRejectsBadParams(t *testing.T) {
	f := fountcast.Factory()
	if f.Name != fountcast.Name {
		t.Fatalf("factory name %q", f.Name)
	}
	if !f.Props.Has(transport.PropMulticast) || !f.Props.Has(transport.PropFEC) ||
		!f.Props.Has(transport.PropOrdered) {
		t.Errorf("props = %v", f.Props)
	}
	if f.Props.Has(transport.PropNAKReliability) || f.Props.Has(transport.PropACKReliability) {
		t.Errorf("fountcast must not advertise feedback reliability: %v", f.Props)
	}
	bad := transport.Params{"k": "65"}
	if _, err := f.NewSender(transport.Config{}, bad); err == nil {
		t.Error("NewSender accepted k=65")
	}
	if _, err := f.NewReceiver(transport.Config{}, bad); err == nil {
		t.Error("NewReceiver accepted k=65")
	}
}

func TestOptionsFillDefaultsViaConstructor(t *testing.T) {
	// A zero Options is usable: constructors fill defaults. Verified via
	// the harness-free path (construction errors only).
	spec, err := transport.ParseSpec("fountcast(proc=0s)")
	if err != nil {
		t.Fatal(err)
	}
	o, err := fountcast.ParseOptions(spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	if o.ProcCost != 0 {
		t.Errorf("proc=0s parsed to %v", o.ProcCost)
	}
	if o.Hold != fountcast.DefaultHold || o.HBInterval != fountcast.DefaultHBInterval {
		t.Errorf("unspecified durations not defaulted: %+v", o)
	}
}
