package fountcast

import (
	"bytes"
	"math/bits"
)

// refDecoder is a deliberately naive reference implementation kept verbatim
// for differential testing of the incremental Decoder: it retains every
// symbol ever offered and re-solves the entire system from scratch by
// Gauss–Jordan elimination on each query — O(n³) row operations, no
// incremental state, no cleverness. Correctness of the fast decoder is
// defined as agreement with this one.
type refDecoder struct {
	count int
	syms  []Symbol
}

func newRefDecoder(count int) *refDecoder {
	return &refDecoder{count: count}
}

// add records a deep copy of the symbol (the reference never mutates or
// takes over caller buffers).
func (r *refDecoder) add(s Symbol) {
	c := s
	c.Data = append([]byte(nil), s.Data...)
	r.syms = append(r.syms, c)
}

// solve re-runs full Gauss–Jordan elimination over every recorded symbol.
// It returns the decoded sources and true iff the system has full rank and
// is consistent.
func (r *refDecoder) solve() ([]Source, bool) {
	rows := make([]Symbol, 0, len(r.syms))
	for _, s := range r.syms {
		if s.Mask == 0 {
			continue
		}
		if r.count < 64 && s.Mask>>uint(r.count) != 0 {
			continue
		}
		c := s
		c.Data = append([]byte(nil), s.Data...)
		rows = append(rows, c)
	}
	pivotRow := make([]int, r.count)
	used := make([]bool, len(rows))
	for col := 0; col < r.count; col++ {
		sel := -1
		for i := range rows {
			if !used[i] && rows[i].Mask&(1<<uint(col)) != 0 {
				sel = i
				break
			}
		}
		if sel < 0 {
			return nil, false
		}
		used[sel] = true
		pivotRow[col] = sel
		for i := range rows {
			if i == sel || rows[i].Mask&(1<<uint(col)) == 0 {
				continue
			}
			rows[i].Mask ^= rows[sel].Mask
			rows[i].SentAt ^= rows[sel].SentAt
			rows[i].Len ^= rows[sel].Len
			rows[i].Data = xorInto(rows[i].Data, rows[sel].Data)
		}
	}
	out := make([]Source, r.count)
	for col := 0; col < r.count; col++ {
		s := rows[pivotRow[col]]
		if s.Mask != 1<<uint(col) || bits.OnesCount64(s.Mask) != 1 {
			return nil, false
		}
		if int(s.Len) > len(s.Data) {
			return nil, false
		}
		out[col] = Source{SentAt: s.SentAt, Payload: s.Data[:s.Len]}
	}
	return out, true
}

// sourcesEqual reports byte-identical equality of two decoded blocks.
func sourcesEqual(a, b []Source) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].SentAt != b[i].SentAt || !bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
	}
	return true
}
