package fountcast

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomBlock builds count source packets with random payloads (lengths 0
// to 32 bytes, so variable- and empty-payload folding is exercised).
func randomBlock(rng *rand.Rand, count int) []Source {
	srcs := make([]Source, count)
	for i := range srcs {
		payload := make([]byte, rng.Intn(33))
		rng.Read(payload)
		srcs[i] = Source{SentAt: rng.Uint64(), Payload: payload}
	}
	return srcs
}

// copySym deep-copies a symbol so it can be offered to the buffer-stealing
// Decoder.Add without aliasing test state.
func copySym(s Symbol) Symbol {
	c := s
	c.Data = append([]byte(nil), s.Data...)
	return c
}

func TestCoefficientsDeterministicNonzeroBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		seed := rng.Uint64()
		id := rng.Uint32()
		count := 1 + rng.Intn(MaxBlock)
		m1 := Coefficients(seed, id, count)
		m2 := Coefficients(seed, id, count)
		if m1 != m2 {
			t.Fatalf("Coefficients(%d,%d,%d) not deterministic: %x vs %x", seed, id, count, m1, m2)
		}
		if m1 == 0 {
			t.Fatalf("Coefficients(%d,%d,%d) = 0", seed, id, count)
		}
		if count < 64 && m1>>uint(count) != 0 {
			t.Fatalf("Coefficients(%d,%d,%d) = %x exceeds %d bits", seed, id, count, m1, count)
		}
	}
	if Coefficients(1, 1, 0) != 0 || Coefficients(1, 1, 65) != 0 {
		t.Error("out-of-range count should yield 0")
	}
}

func TestDecoderAllDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, count := range []int{1, 2, 8, 63, 64} {
		srcs := randomBlock(rng, count)
		d, err := NewDecoder(count)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range srcs {
			if !d.Add(copySym(SourceSymbol(i, s))) {
				t.Fatalf("count=%d: direct symbol %d rejected", count, i)
			}
			if !d.Has(i) {
				t.Fatalf("count=%d: Has(%d) false after direct add", count, i)
			}
		}
		if !d.Complete() {
			t.Fatalf("count=%d: rank %d after all directs", count, d.Rank())
		}
		got, err := d.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !sourcesEqual(got, srcs) {
			t.Fatalf("count=%d: decode mismatch", count)
		}
	}
}

// The core erasure property: drop any subset of source packets; as long as
// enough repair symbols are offered that K independent equations survive,
// the decode is byte-identical to the original block.
func TestDecoderErasureProperty(t *testing.T) {
	f := func(seed int64, countRaw uint8, lossRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := 1 + int(countRaw)%16
		lost := int(lossRaw) % (count + 1) // 0..count packets erased
		srcs := randomBlock(rng, count)
		blockSeed := rng.Uint64()

		d, err := NewDecoder(count)
		if err != nil {
			return false
		}
		erased := rng.Perm(count)[:lost]
		isErased := make(map[int]bool, lost)
		for _, i := range erased {
			isErased[i] = true
		}
		for i, s := range srcs {
			if !isErased[i] {
				d.Add(copySym(SourceSymbol(i, s)))
			}
		}
		// Offer repairs until the decoder completes. Dense random
		// combinations make each new draw independent with probability
		// >= 1/2, so a small multiple of the deficit always suffices;
		// the hard cap only guards against an implementation bug.
		for id := uint32(1); !d.Complete(); id++ {
			if id > uint32(64*(lost+1)) {
				return false
			}
			d.Add(MakeRepair(srcs, blockSeed, id))
		}
		got, err := d.Decode()
		if err != nil {
			return false
		}
		return sourcesEqual(got, srcs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Arrival order must not matter: any permutation of the same symbol set
// decodes to the same block.
func TestDecoderOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const count = 10
	srcs := randomBlock(rng, count)
	blockSeed := rng.Uint64()
	syms := make([]Symbol, 0, count+6)
	for i := 0; i < count; i += 2 { // half the directs
		syms = append(syms, SourceSymbol(i, srcs[i]))
	}
	for id := uint32(1); id <= 12; id++ {
		syms = append(syms, MakeRepair(srcs, blockSeed, id))
	}
	var want []Source
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(len(syms))
		d, _ := NewDecoder(count)
		for _, i := range order {
			d.Add(copySym(syms[i]))
		}
		if !d.Complete() {
			t.Fatalf("trial %d: incomplete at rank %d", trial, d.Rank())
		}
		got, err := d.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			if !sourcesEqual(got, srcs) {
				t.Fatal("decode does not match sources")
			}
		} else if !sourcesEqual(got, want) {
			t.Fatalf("trial %d: order changed decode", trial)
		}
	}
}

func TestDecoderRejectsDependentAndInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	srcs := randomBlock(rng, 4)
	d, _ := NewDecoder(4)
	if d.Add(Symbol{Mask: 0}) {
		t.Error("accepted zero mask")
	}
	if d.Add(Symbol{Mask: 1 << 4}) {
		t.Error("accepted mask outside block")
	}
	if !d.Add(copySym(SourceSymbol(0, srcs[0]))) {
		t.Fatal("rejected first direct")
	}
	if d.Add(copySym(SourceSymbol(0, srcs[0]))) {
		t.Error("accepted duplicate direct")
	}
	if d.Rank() != 1 {
		t.Errorf("rank = %d, want 1", d.Rank())
	}
	// A repair covering only packet 0 is dependent too.
	dep := MakeRepair(srcs[:1], 99, 1)
	if dep.Mask != 1 {
		t.Fatalf("single-source repair mask = %x", dep.Mask)
	}
	if d.Add(dep) {
		t.Error("accepted dependent repair")
	}
	if _, err := d.Decode(); err == nil {
		t.Error("Decode succeeded before complete")
	}
}

func TestDecoderInconsistentLength(t *testing.T) {
	d, _ := NewDecoder(1)
	if !d.Add(Symbol{Mask: 1, Len: 5, Data: []byte{1, 2}}) {
		t.Fatal("symbol rejected")
	}
	if _, err := d.Decode(); err == nil {
		t.Error("Decode accepted len > data")
	}
}

func TestNewDecoderBounds(t *testing.T) {
	for _, bad := range []int{0, -1, 65} {
		if _, err := NewDecoder(bad); err == nil {
			t.Errorf("NewDecoder(%d) accepted", bad)
		}
	}
	for _, ok := range []int{1, 64} {
		if _, err := NewDecoder(ok); err != nil {
			t.Errorf("NewDecoder(%d): %v", ok, err)
		}
	}
}

func TestDecodeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	srcs := randomBlock(rng, 6)
	blockSeed := rng.Uint64()
	d, _ := NewDecoder(6)
	for i := 2; i < 6; i++ {
		d.Add(copySym(SourceSymbol(i, srcs[i])))
	}
	for id := uint32(1); !d.Complete(); id++ {
		d.Add(MakeRepair(srcs, blockSeed, id))
	}
	first, err := d.Decode()
	if err != nil {
		t.Fatal(err)
	}
	second, err := d.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !sourcesEqual(first, second) || !sourcesEqual(first, srcs) {
		t.Error("Decode not idempotent")
	}
	for i := 0; i < 6; i++ {
		if !d.Has(i) {
			t.Errorf("Has(%d) false after decode", i)
		}
	}
}

// Differential property: the incremental decoder agrees with the naive
// from-scratch Gauss–Jordan reference on both solvability and the decoded
// bytes, across random mixes of direct symbols, repairs, duplicates, and
// junk equations.
func TestDecoderDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		count := 1 + rng.Intn(MaxBlock)
		srcs := randomBlock(rng, count)
		blockSeed := rng.Uint64()

		d, err := NewDecoder(count)
		if err != nil {
			return false
		}
		ref := newRefDecoder(count)
		nops := 1 + rng.Intn(3*count)
		for op := 0; op < nops; op++ {
			var sym Symbol
			switch rng.Intn(4) {
			case 0, 1: // direct source packet
				i := rng.Intn(count)
				sym = SourceSymbol(i, srcs[i])
			case 2: // repair
				sym = MakeRepair(srcs, blockSeed, uint32(1+rng.Intn(4*count)))
			case 3: // junk equation over the block (still consistent:
				// fold an arbitrary subset directly)
				mask := rng.Uint64()
				if count < 64 {
					mask &= (1 << uint(count)) - 1
				}
				sym = Symbol{Mask: mask}
				for m := mask; m != 0; m &= m - 1 {
					i := trailing(m)
					sym.SentAt ^= srcs[i].SentAt
					sym.Len ^= uint16(len(srcs[i].Payload))
					sym.Data = xorInto(sym.Data, srcs[i].Payload)
				}
			}
			ref.add(sym)
			d.Add(copySym(sym))
		}
		refOut, refOK := ref.solve()
		if d.Complete() != refOK {
			return false
		}
		if !refOK {
			return true
		}
		got, err := d.Decode()
		if err != nil {
			return false
		}
		return sourcesEqual(got, refOut) && sourcesEqual(got, srcs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func trailing(m uint64) int {
	n := 0
	for m&1 == 0 {
		m >>= 1
		n++
	}
	return n
}

// FuzzFountDecode drives the decoder through random blocks with random
// symbol erasure, reordering, and duplication, checking the tentpole
// invariant: whenever at least K linearly independent symbols survive (the
// decoder reports Complete), the decoded block is byte-identical to the
// input — and the incremental decoder agrees with the naive reference on
// solvability either way.
func FuzzFountDecode(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(3), []byte("fountcast property seed"))
	f.Add(int64(42), uint8(1), uint8(0), []byte{})
	f.Add(int64(-7), uint8(64), uint8(200), []byte{0xFF, 0x00, 0xAB})
	f.Fuzz(func(t *testing.T, seed int64, countRaw, chaosRaw uint8, blob []byte) {
		rng := rand.New(rand.NewSource(seed))
		count := 1 + int(countRaw)%MaxBlock
		// Slice the fuzz blob into payloads so the corpus controls bytes.
		srcs := make([]Source, count)
		for i := range srcs {
			n := 0
			if len(blob) > 0 {
				n = int(blob[0]) % 24
				blob = blob[1:]
			}
			payload := make([]byte, n)
			for j := range payload {
				if len(blob) > 0 {
					payload[j] = blob[0]
					blob = blob[1:]
				} else {
					payload[j] = byte(rng.Intn(256))
				}
			}
			srcs[i] = Source{SentAt: rng.Uint64(), Payload: payload}
		}
		blockSeed := rng.Uint64()

		// Build the transmitted symbol stream: all directs plus repairs.
		nRepair := int(chaosRaw) % (count + 8)
		stream := make([]Symbol, 0, count+nRepair)
		for i, s := range srcs {
			stream = append(stream, SourceSymbol(i, s))
		}
		for id := 1; id <= nRepair; id++ {
			stream = append(stream, MakeRepair(srcs, blockSeed, uint32(id)))
		}
		// Random erasure, duplication, reorder.
		var received []Symbol
		for _, s := range stream {
			if rng.Intn(3) == 0 {
				continue // erased
			}
			received = append(received, s)
			if rng.Intn(5) == 0 {
				received = append(received, s) // duplicated
			}
		}
		rng.Shuffle(len(received), func(i, j int) {
			received[i], received[j] = received[j], received[i]
		})

		d, err := NewDecoder(count)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefDecoder(count)
		for _, s := range received {
			ref.add(s)
			d.Add(copySym(s))
		}
		refOut, refOK := ref.solve()
		if d.Complete() != refOK {
			t.Fatalf("solvability disagreement: incremental=%v reference=%v (rank %d/%d, %d symbols)",
				d.Complete(), refOK, d.Rank(), count, len(received))
		}
		if !d.Complete() {
			return
		}
		got, err := d.Decode()
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !sourcesEqual(got, srcs) {
			t.Fatal("decoded block differs from input")
		}
		if !sourcesEqual(got, refOut) {
			t.Fatal("incremental and reference decoders disagree")
		}
	})
}
