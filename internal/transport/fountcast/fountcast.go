// This file is the transport built on the codec in code.go: the Fountcast
// sender symbolizes the stream into K-packet source blocks and multicasts
// repair symbols at a configured overhead rate; the receiver decodes each
// block by incremental Gaussian elimination and delivers in order.
//
// Where NAKcast pays a timeout plus a round trip for every loss and
// Ricochet's fixed XOR panels collapse when a burst takes out more than one
// packet per panel, Fountcast recovers any loss pattern up to the repair
// budget with zero feedback: every repair symbol is useful against every
// loss in its block. The cost is a fixed, tunable bandwidth overhead that
// is spent whether or not losses occur — which is exactly the trade the
// adaptation layer is there to arbitrate.
package fountcast

import (
	"fmt"
	"math/bits"
	"strconv"
	"time"

	"adamant/internal/env"
	"adamant/internal/transport"
	"adamant/internal/wire"
)

// Name is the protocol's registry/spec name.
const Name = "fountcast"

// Props advertises Fountcast's transport properties: multicast FEC with
// in-order delivery, best-effort class (no feedback channel, so no
// convergence guarantee after arbitrarily long faults).
const Props = transport.PropMulticast | transport.PropFEC | transport.PropOrdered

// Defaults for Options fields left zero.
const (
	DefaultK           = 8
	DefaultOverheadPct = 25
	DefaultHBInterval  = 100 * time.Millisecond
	// DefaultProcCost models the reference-machine CPU time the receiver
	// spends per delivered packet on sequencing bookkeeping.
	DefaultProcCost = 50 * time.Microsecond
	// DefaultHold is how long a receiver keeps an undecodable block open
	// after learning the sender has moved past it, waiting for straggler
	// symbols, before abandoning its missing packets. There is no NAK to
	// retry, so this is the whole tail of the recovery latency
	// distribution: decode either happens as symbols arrive or never.
	DefaultHold = 40 * time.Millisecond

	// MaxOverheadPct bounds the configured overhead rate: 400% means four
	// repair symbols per source packet, far past any useful operating
	// point but room enough for stress experiments.
	MaxOverheadPct = 400

	// symbolBuildWork is the sender CPU cost of folding one repair symbol.
	symbolBuildWork = 40 * time.Microsecond
	// decodeWork is the receiver CPU cost of reducing one repair symbol
	// into the block's elimination state.
	decodeWork = 60 * time.Microsecond

	// maxOpenBlocks bounds the receiver's per-block state map so a hostile
	// sequence jump cannot balloon it; blocks beyond the cap are counted
	// OutOfWindow and recovered only by the abandon path.
	maxOpenBlocks = 1 << 12
)

// Options are Fountcast's tunables.
type Options struct {
	// K is the source-block size in packets (1..MaxBlock). Larger blocks
	// spread the repair budget across more loss patterns but delay tail
	// decode until the block completes.
	K int
	// OverheadPct is the repair budget as a percentage of source packets:
	// 25 means one repair symbol per four source packets on average
	// (fractional credit carries across blocks). 0 disables repair
	// entirely, degenerating into ordered best-effort multicast.
	OverheadPct int
	// HBInterval is the sender heartbeat period used for tail-gap
	// detection.
	HBInterval time.Duration
	// ProcCost is the per-delivery receiver processing cost at
	// reference-machine speed.
	ProcCost time.Duration
	// Hold is the straggler window before an undecodable closed block's
	// missing packets are abandoned.
	Hold time.Duration
}

func (o *Options) fillDefaults() {
	if o.K <= 0 {
		o.K = DefaultK
	}
	if o.OverheadPct < 0 {
		o.OverheadPct = DefaultOverheadPct
	}
	if o.HBInterval <= 0 {
		o.HBInterval = DefaultHBInterval
	}
	if o.ProcCost == 0 {
		o.ProcCost = DefaultProcCost
	}
	if o.Hold <= 0 {
		o.Hold = DefaultHold
	}
}

// Spec returns the canonical transport.Spec for a (K, overhead%) point,
// e.g. Spec(8, 25) == "fountcast(k=8,oh=25)".
func Spec(k, overheadPct int) transport.Spec {
	return transport.Spec{Name: Name, Params: transport.Params{
		"k":  strconv.Itoa(k),
		"oh": strconv.Itoa(overheadPct),
	}}
}

// ParseOptions extracts Options from spec params.
func ParseOptions(p transport.Params) (Options, error) {
	var o Options
	var err error
	if o.K, err = p.Int("k", DefaultK); err != nil {
		return o, err
	}
	if o.OverheadPct, err = p.Int("oh", DefaultOverheadPct); err != nil {
		return o, err
	}
	if o.HBInterval, err = p.Duration("hb", DefaultHBInterval); err != nil {
		return o, err
	}
	if o.ProcCost, err = p.Duration("proc", DefaultProcCost); err != nil {
		return o, err
	}
	if o.Hold, err = p.Duration("hold", DefaultHold); err != nil {
		return o, err
	}
	if o.K < 1 || o.K > MaxBlock {
		return o, fmt.Errorf("fountcast: k=%d outside 1..%d", o.K, MaxBlock)
	}
	if o.OverheadPct < 0 || o.OverheadPct > MaxOverheadPct {
		return o, fmt.Errorf("fountcast: oh=%d outside 0..%d", o.OverheadPct, MaxOverheadPct)
	}
	if o.HBInterval <= 0 || o.Hold <= 0 {
		return o, fmt.Errorf("fountcast: non-positive interval in %+v", o)
	}
	return o, nil
}

// Factory returns the registry factory for Fountcast.
func Factory() *transport.Factory {
	return &transport.Factory{
		Name:  Name,
		Props: Props,
		NewSender: func(cfg transport.Config, params transport.Params) (transport.Sender, error) {
			o, err := ParseOptions(params)
			if err != nil {
				return nil, err
			}
			return NewSender(cfg, o)
		},
		NewReceiver: func(cfg transport.Config, params transport.Params) (transport.Receiver, error) {
			o, err := ParseOptions(params)
			if err != nil {
				return nil, err
			}
			return NewReceiver(cfg, o)
		},
	}
}

// blockSeedFor derives a block's coefficient seed as a pure function of the
// stream, the writer, and the block index. The seed also travels in every
// symbol body, so receivers never need to compute this — but a
// deterministic derivation (rather than a sender-side RNG) keeps the whole
// protocol replayable from its configuration alone.
func blockSeedFor(stream wire.StreamID, src wire.NodeID, block uint64) uint64 {
	x := uint64(stream)<<40 ^ uint64(src)<<24 ^ block
	x ^= 0xA5A5F00DD00DF7A3
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Sender is the writer-side Fountcast instance.
type Sender struct {
	cfg  transport.Config
	opts Options
	seq  uint64

	// cur accumulates the in-progress source block; payloads are arena
	// copies that stay valid until the block's repairs are folded.
	cur []Source
	// credits is the fractional repair budget carried across blocks, in
	// percent-packets: each flushed block adds count*OverheadPct and each
	// emitted repair spends 100.
	credits int

	arena  transport.Arena
	hbTmr  env.Timer
	closed bool
}

var _ transport.Sender = (*Sender)(nil)

// NewSender builds a Fountcast sender on cfg.Endpoint.
func NewSender(cfg transport.Config, opts Options) (*Sender, error) {
	if err := cfg.ValidateSender(); err != nil {
		return nil, err
	}
	opts.fillDefaults()
	s := &Sender{
		cfg:  cfg,
		opts: opts,
		seq:  cfg.BaseSeq,
		cur:  make([]Source, 0, opts.K),
	}
	s.hbTmr = cfg.Env.After(opts.HBInterval, s.heartbeat)
	return s, nil
}

// Publish implements transport.Sender: multicast the sample as ordinary
// data (the code is systematic — source packets are source symbols), and
// flush the block's repair symbols when it fills.
func (s *Sender) Publish(payload []byte) error {
	if s.closed {
		return transport.ErrClosed
	}
	s.seq++
	now := s.cfg.Env.Now()
	cp := s.arena.Copy(payload)
	pkt := &wire.Packet{
		Type:    wire.TypeData,
		Src:     s.cfg.Endpoint.Local(),
		Stream:  s.cfg.Stream,
		Seq:     s.seq,
		SentAt:  now,
		Payload: cp,
	}
	err := s.cfg.Endpoint.Multicast(pkt)
	s.cur = append(s.cur, Source{SentAt: uint64(now.UnixNano()), Payload: cp})
	if len(s.cur) == s.opts.K {
		s.flushBlock(false)
	}
	return err
}

// Seq implements transport.Sender.
func (s *Sender) Seq() uint64 { return s.seq }

// Close implements transport.Sender: flush the final (possibly partial)
// block's repairs, then announce EOS so receivers can close tail blocks.
func (s *Sender) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.hbTmr != nil {
		s.hbTmr.Stop()
	}
	s.flushBlock(true)
	s.sendHeartbeat(wire.FlagEOS)
	return nil
}

// flushBlock emits the current block's repair symbols and resets the block.
// The repair count comes from the integer credit accumulator, so the
// long-run symbol rate is exactly OverheadPct/100 per source packet with no
// floating point. A final partial block gets at least one repair when any
// overhead is configured at all: the stream tail is where feedback-free
// protocols are weakest, and one symbol there is cheap insurance.
func (s *Sender) flushBlock(final bool) {
	n := len(s.cur)
	if n == 0 {
		return
	}
	idx := (s.seq - s.cfg.BaseSeq - 1) / uint64(s.opts.K)
	seed := blockSeedFor(s.cfg.Stream, s.cfg.Endpoint.Local(), idx)
	s.credits += n * s.opts.OverheadPct
	nRep := s.credits / 100
	s.credits %= 100
	if final && nRep == 0 && s.opts.OverheadPct > 0 {
		nRep, s.credits = 1, 0
	}
	now := s.cfg.Env.Now()
	for id := 1; id <= nRep; id++ {
		s.cfg.Endpoint.Work(symbolBuildWork)
		sym := MakeRepair(s.cur, seed, uint32(id))
		body, err := (&wire.SymbolBody{
			Block:      idx,
			Count:      uint16(n),
			SymbolID:   uint32(id),
			Seed:       seed,
			XORSentAt:  sym.SentAt,
			XORLen:     sym.Len,
			XORPayload: sym.Data,
		}).Encode(nil)
		if err != nil {
			break
		}
		pkt := &wire.Packet{
			Type:   wire.TypeSymbol,
			Src:    s.cfg.Endpoint.Local(),
			Stream: s.cfg.Stream,
			// The header seq is the block's highest source seq, so a
			// symbol arriving ahead of (or instead of) its data packets
			// still advances the receiver's gap detection.
			Seq:     s.seq,
			SentAt:  now,
			Payload: body,
		}
		// A failed repair send costs redundancy, not correctness.
		_ = s.cfg.Endpoint.Multicast(pkt)
	}
	s.cur = s.cur[:0]
}

func (s *Sender) heartbeat() {
	if s.closed {
		return
	}
	s.sendHeartbeat(0)
	s.hbTmr = s.cfg.Env.After(s.opts.HBInterval, s.heartbeat)
}

func (s *Sender) sendHeartbeat(flags uint8) {
	body, err := (&wire.HeartbeatBody{HighSeq: s.seq}).Encode(nil)
	if err != nil {
		return
	}
	pkt := &wire.Packet{
		Type:    wire.TypeHeartbeat,
		Flags:   flags,
		Src:     s.cfg.Endpoint.Local(),
		Stream:  s.cfg.Stream,
		Seq:     s.seq,
		SentAt:  s.cfg.Env.Now(),
		Payload: body,
	}
	_ = s.cfg.Endpoint.Multicast(pkt)
}

// Receiver is the reader-side Fountcast instance.
type Receiver struct {
	cfg  transport.Config
	opts Options
	mux  *transport.Mux

	nextDeliver uint64 // next seq to deliver in order (BaseSeq+1-based)
	maxSeen     uint64
	blocks      map[uint64]*blockState
	abandoned   map[uint64]bool
	eos         bool
	eosHigh     uint64

	// held counts stored-but-undelivered packet entries and rows counts
	// buffered repair equations, together the recovery state reported to
	// ReceiverStats.NoteBuffered.
	held int
	rows int

	arena   transport.Arena
	holdTmr env.Timer
	emitq   transport.EmitQueue
	stats   transport.ReceiverStats
	closed  bool
}

// blockState is one source block's receive state. entries is indexed by
// position within the block; have/recovered/delivered are position bitmasks.
type blockState struct {
	lo         uint64 // first source seq of the block
	count      int    // source packets in the block
	countKnown bool   // count pinned by a symbol body or the EOS high seq
	have       uint64 // positions stored (direct or recovered)
	recovered  uint64 // of have, positions reconstructed by decode
	entries    []blockEntry
	dec        *Decoder // built lazily on the first repair symbol
	decRows    int      // repair equations accepted into dec
	due        time.Time
	gaveUp     bool
}

type blockEntry struct {
	sentAt  time.Time
	payload []byte
}

// done reports whether every source packet of the block is stored.
func (b *blockState) done() bool {
	return bits.OnesCount64(b.have&loMask(b.count)) == b.count
}

func (b *blockState) hi() uint64 { return b.lo + uint64(b.count) - 1 }

func loMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

var _ transport.Receiver = (*Receiver)(nil)

// NewReceiver builds a Fountcast receiver on cfg.Endpoint.
func NewReceiver(cfg transport.Config, opts Options) (*Receiver, error) {
	if err := cfg.ValidateReceiver(); err != nil {
		return nil, err
	}
	opts.fillDefaults()
	r := &Receiver{
		cfg:         cfg,
		opts:        opts,
		mux:         transport.NewMux(cfg.Endpoint),
		nextDeliver: cfg.BaseSeq + 1,
		maxSeen:     cfg.BaseSeq,
		blocks:      make(map[uint64]*blockState),
		abandoned:   make(map[uint64]bool),
	}
	r.emitq = transport.NewEmitQueue(cfg.Env, cfg.Deliver, &r.closed)
	r.mux.Handle(wire.TypeData, r.onData)
	r.mux.Handle(wire.TypeSymbol, r.onSymbol)
	r.mux.Handle(wire.TypeHeartbeat, r.onHeartbeat)
	return r, nil
}

// Stats implements transport.Receiver.
func (r *Receiver) Stats() transport.ReceiverStats { return r.stats }

// OpenBlocks reports the number of per-block state records currently held.
// Every record must be freed once the delivery cursor passes the block,
// whether its tail seq was delivered or abandoned — a record that outlives
// the cursor leaks until the maxOpenBlocks cap stalls delivery.
func (r *Receiver) OpenBlocks() int { return len(r.blocks) }

// Close implements transport.Receiver.
func (r *Receiver) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.holdTmr != nil {
		r.holdTmr.Stop()
	}
	return nil
}

func (r *Receiver) blockIdx(seq uint64) uint64 {
	return (seq - r.cfg.BaseSeq - 1) / uint64(r.opts.K)
}

func (r *Receiver) posOf(seq uint64) int {
	return int((seq - r.cfg.BaseSeq - 1) % uint64(r.opts.K))
}

// block returns the state record for block idx, creating it if absent. It
// returns nil at the open-block cap.
func (r *Receiver) block(idx uint64) *blockState {
	if b, ok := r.blocks[idx]; ok {
		return b
	}
	if len(r.blocks) >= maxOpenBlocks {
		return nil
	}
	b := &blockState{
		lo:      r.cfg.BaseSeq + idx*uint64(r.opts.K) + 1,
		count:   r.opts.K,
		entries: make([]blockEntry, r.opts.K),
	}
	r.shrinkToEOS(b)
	r.blocks[idx] = b
	return b
}

// shrinkToEOS pins the tail block's true count once the stream end is
// known: the final block covers only the seqs up to the EOS high seq.
func (r *Receiver) shrinkToEOS(b *blockState) {
	if !r.eos || b.countKnown {
		return
	}
	if r.eosHigh >= b.hi() || r.eosHigh < b.lo {
		return
	}
	b.count = int(r.eosHigh - b.lo + 1)
	b.countKnown = true
}

func (r *Receiver) onData(src wire.NodeID, pkt *wire.Packet) {
	if r.closed || pkt.Stream != r.cfg.Stream {
		return
	}
	seq := pkt.Seq
	if seq <= r.cfg.BaseSeq {
		return // below this instance's sequence space (covers bogus seq 0)
	}
	if seq < r.nextDeliver || r.abandoned[seq] {
		r.stats.Duplicates++
		return
	}
	b := r.block(r.blockIdx(seq))
	if b == nil {
		r.stats.OutOfWindow++
		return
	}
	p := r.posOf(seq)
	if p >= b.count {
		r.stats.OutOfWindow++ // beyond a pinned tail block: no such sample
		return
	}
	if b.have&(1<<uint(p)) != 0 {
		r.stats.Duplicates++
		return
	}
	b.entries[p] = blockEntry{sentAt: pkt.SentAt, payload: r.arena.Copy(pkt.Payload)}
	b.have |= 1 << uint(p)
	r.held++
	if b.dec != nil && !b.gaveUp {
		r.feedDirect(b, p)
		r.tryDecode(b)
	}
	r.noteHigh(seq)
	r.drain()
	r.noteBuffered()
}

// feedDirect offers a stored direct packet to the block's decoder as its
// singleton equation. The decoder XOR-folds in place, so it gets a copy.
func (r *Receiver) feedDirect(b *blockState, p int) {
	e := b.entries[p]
	b.dec.Add(Symbol{
		Mask:   1 << uint(p),
		SentAt: uint64(e.sentAt.UnixNano()),
		Len:    uint16(len(e.payload)),
		Data:   append([]byte(nil), e.payload...),
	})
}

func (r *Receiver) onSymbol(src wire.NodeID, pkt *wire.Packet) {
	if r.closed || pkt.Stream != r.cfg.Stream {
		return
	}
	sb, err := wire.DecodeSymbol(pkt.Payload)
	if err != nil {
		return
	}
	count := int(sb.Count)
	if count > r.opts.K {
		return // block bigger than this spec's K: wrong config or corrupt
	}
	b := r.block(sb.Block)
	if b == nil {
		r.stats.OutOfWindow++
		return
	}
	r.noteHigh(pkt.Seq)
	if b.gaveUp || b.done() {
		r.drain()
		return // late or redundant: nothing left to recover
	}
	if !b.countKnown {
		if count < b.count {
			b.count = count
		}
		b.countKnown = true
	} else if count != b.count {
		return // disagrees with the pinned count: corrupt
	}
	if b.dec == nil {
		dec, err := NewDecoder(b.count)
		if err != nil {
			return
		}
		b.dec = dec
		for p := 0; p < b.count; p++ {
			if b.have&(1<<uint(p)) != 0 {
				r.feedDirect(b, p)
			}
		}
	}
	r.cfg.Endpoint.Work(decodeWork)
	sym := Symbol{
		Mask:   Coefficients(sb.Seed, sb.SymbolID, b.count),
		SentAt: sb.XORSentAt,
		Len:    sb.XORLen,
		Data:   append([]byte(nil), sb.XORPayload...),
	}
	if b.dec.Add(sym) {
		b.decRows++
		r.rows++
	}
	r.tryDecode(b)
	r.drain()
	r.noteBuffered()
}

// tryDecode solves the block if the decoder has reached full rank, storing
// every missing packet as recovered.
func (r *Receiver) tryDecode(b *blockState) {
	if b.dec == nil || !b.dec.Complete() {
		return
	}
	out, err := b.dec.Decode()
	r.rows -= b.decRows
	b.decRows = 0
	b.dec = nil
	if err != nil {
		// Inconsistent symbol set (corruption): leave the block to the
		// abandon path.
		return
	}
	for p := 0; p < b.count; p++ {
		if b.have&(1<<uint(p)) != 0 {
			continue
		}
		b.entries[p] = blockEntry{
			sentAt:  time.Unix(0, int64(out[p].SentAt)),
			payload: out[p].Payload,
		}
		b.have |= 1 << uint(p)
		b.recovered |= 1 << uint(p)
		r.held++
	}
}

func (r *Receiver) onHeartbeat(src wire.NodeID, pkt *wire.Packet) {
	if r.closed || pkt.Stream != r.cfg.Stream {
		return
	}
	hb, err := wire.DecodeHeartbeat(pkt.Payload)
	if err != nil {
		return
	}
	if pkt.Flags&wire.FlagEOS != 0 {
		r.eos = true
		r.eosHigh = hb.HighSeq
		for _, b := range r.blocks {
			r.shrinkToEOS(b)
		}
	}
	r.noteHigh(hb.HighSeq)
	r.closeBlocks() // EOS closes blocks even when the high seq is stale
	r.drain()
	r.noteBuffered()
}

// noteHigh records a new high watermark and re-evaluates block closure.
func (r *Receiver) noteHigh(seq uint64) {
	if seq <= r.maxSeen {
		return
	}
	r.maxSeen = seq
	r.closeBlocks()
}

// closeBlocks materializes records for every block between the delivery
// cursor and the high watermark (so wholly-lost blocks get an abandon
// deadline too) and arms the straggler deadline on each closed, incomplete
// block. A block is closed once the sender has demonstrably moved past it
// — a higher seq was seen — or the stream has ended.
func (r *Receiver) closeBlocks() {
	if r.maxSeen <= r.cfg.BaseSeq {
		return
	}
	loIdx := r.blockIdx(r.nextDeliver)
	if r.nextDeliver > r.maxSeen {
		loIdx = r.blockIdx(r.maxSeen)
	}
	for idx := r.blockIdx(r.maxSeen); ; idx-- {
		if r.block(idx) == nil {
			break // at the cap; the newest blocks win
		}
		if idx == loIdx || idx == 0 {
			break
		}
	}
	now := r.cfg.Env.Now()
	arm := false
	for _, b := range r.blocks {
		if !b.due.IsZero() || b.gaveUp || b.done() {
			continue
		}
		if r.maxSeen > b.hi() || r.eos {
			b.due = now.Add(r.opts.Hold)
			arm = true
		}
	}
	if arm {
		r.armHold()
	}
}

// armHold (re)schedules the single straggler timer for the earliest due
// block.
func (r *Receiver) armHold() {
	if r.holdTmr != nil {
		r.holdTmr.Stop()
		r.holdTmr = nil
	}
	var earliest time.Time
	for _, b := range r.blocks {
		if b.due.IsZero() || b.gaveUp || b.done() {
			continue
		}
		if earliest.IsZero() || b.due.Before(earliest) {
			earliest = b.due
		}
	}
	if earliest.IsZero() {
		return
	}
	d := earliest.Sub(r.cfg.Env.Now())
	if d < 0 {
		d = 0
	}
	r.holdTmr = r.cfg.Env.After(d, r.fireHold)
}

func (r *Receiver) fireHold() {
	if r.closed {
		return
	}
	r.holdTmr = nil
	now := r.cfg.Env.Now()
	for _, b := range r.blocks {
		if b.due.IsZero() || b.due.After(now) || b.gaveUp || b.done() {
			continue
		}
		r.abandonBlock(b)
	}
	r.drain()
	r.noteBuffered()
	r.armHold()
}

// abandonBlock gives up on the block's missing packets: no repair arrived
// in time to decode them and there is no feedback channel to ask again.
func (r *Receiver) abandonBlock(b *blockState) {
	b.gaveUp = true
	if b.dec != nil {
		r.rows -= b.decRows
		b.decRows = 0
		b.dec = nil
	}
	for p := 0; p < b.count; p++ {
		if b.have&(1<<uint(p)) != 0 {
			continue
		}
		seq := b.lo + uint64(p)
		if seq < r.nextDeliver {
			continue
		}
		r.abandoned[seq] = true
		r.stats.Abandoned++
		if r.cfg.OnLost != nil {
			r.cfg.OnLost(seq)
		}
	}
}

// drain delivers in order from the cursor, sweeping abandoned seqs, and
// frees each block record once the cursor passes its end.
func (r *Receiver) drain() {
	for r.nextDeliver <= r.maxSeen {
		seq := r.nextDeliver
		idx := r.blockIdx(seq)
		b := r.blocks[idx]
		if r.abandoned[seq] {
			delete(r.abandoned, seq)
			r.nextDeliver++
			if b != nil && r.nextDeliver > b.hi() {
				r.freeBlock(idx, b)
			}
			continue
		}
		if b == nil {
			break
		}
		p := r.posOf(seq)
		if p >= b.count || b.have&(1<<uint(p)) == 0 {
			break
		}
		r.deliver(b, p, seq)
		r.nextDeliver++
		if r.nextDeliver > b.hi() {
			r.freeBlock(idx, b)
		}
	}
}

func (r *Receiver) freeBlock(idx uint64, b *blockState) {
	if b.dec != nil {
		r.rows -= b.decRows
		b.decRows = 0
		b.dec = nil
	}
	delete(r.blocks, idx)
}

func (r *Receiver) deliver(b *blockState, p int, seq uint64) {
	// The entry stays in place after delivery: a repair symbol arriving
	// later needs every held source packet as a decoder equation, so the
	// block's payloads live until freeBlock drops the whole record.
	e := b.entries[p]
	rec := b.recovered&(1<<uint(p)) != 0
	r.held--
	r.stats.Delivered++
	if rec {
		r.stats.Recovered++
	}
	delay := r.cfg.Endpoint.Work(r.opts.ProcCost)
	r.emitq.Emit(delay, transport.Delivery{
		Stream:    r.cfg.Stream,
		Seq:       seq,
		Payload:   e.payload,
		SentAt:    e.sentAt,
		Recovered: rec,
	})
}

func (r *Receiver) noteBuffered() {
	r.stats.NoteBuffered(r.held + r.rows + len(r.abandoned))
}
