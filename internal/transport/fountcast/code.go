// Package fountcast implements a rateless fountain-coded multicast
// transport: senders group consecutive data packets into fixed-size source
// blocks and multicast extra repair symbols — seeded random GF(2) linear
// combinations of the block — at a configurable overhead rate. Receivers
// decode missing packets by incremental Gaussian elimination as soon as any
// K linearly independent symbols (direct data or repairs) arrive, giving
// zero-RTT loss recovery with no feedback channel.
//
// This file is the pure codec: coefficient generation, symbol folding, and
// the incremental decoder. It has no dependency on the transport runtime so
// the properties ("any K independent symbols reconstruct the block
// byte-identically") can be tested and fuzzed in isolation.
package fountcast

import (
	"errors"
	"fmt"
	"math/bits"
)

// MaxBlock bounds the source-block size: coefficient vectors are one 64-bit
// word, so a block covers at most 64 source packets.
const MaxBlock = 64

// Coefficients returns the deterministic coefficient bit vector for repair
// symbol symbolID of a count-packet block seeded with seed: bit i selects
// source packet i into the XOR. Every node derives the identical mask from
// the (seed, symbolID) pair carried on the wire, so repair packets never
// ship the vector itself.
//
// Symbol 1 is always the full-block XOR: one repair must deterministically
// cover ANY single loss (the common case), not just cover it with
// probability ~1/2, so the minimum overhead budget matches a Ricochet
// panel's single-loss guarantee. Symbols 2 and up are splitmix64-style
// draws over the pair, masked to count bits, with zero draws remapped by
// re-hashing. Dense random vectors make the decode matrix behave like a
// uniform random GF(2) matrix: the chance that m >= k received symbols fail
// to span the block decays as 2^-(m-k), with no correlated erasure pattern
// (e.g. a loss burst) able to target the code's structure the way it can
// wipe out a fixed XOR panel.
func Coefficients(seed uint64, symbolID uint32, count int) uint64 {
	if count <= 0 || count > MaxBlock {
		return 0
	}
	var mask uint64
	if count == 64 {
		mask = ^uint64(0)
	} else {
		mask = (uint64(1) << uint(count)) - 1
	}
	if symbolID == 1 {
		return mask
	}
	x := seed ^ (uint64(symbolID) * 0x9E3779B97F4A7C15)
	for {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		if v := z & mask; v != 0 {
			return v
		}
	}
}

// Source is one source packet of a block as the codec sees it: the
// origination timestamp (Unix nanoseconds) and the payload bytes. Folding
// carries the timestamp through recovery so end-to-end latency accounting
// is exact for decoded packets.
type Source struct {
	SentAt  uint64
	Payload []byte
}

// Symbol is one equation over a block: the XOR of the source packets
// selected by Mask. A directly received data packet is the singleton
// equation Mask = 1<<i; a repair packet is a dense combination. Len folds
// the selected payload lengths (it is an XOR of lengths, not a length) and
// Data folds the zero-padded payloads.
type Symbol struct {
	Mask   uint64
	SentAt uint64
	Len    uint16
	Data   []byte
}

// SourceSymbol wraps source packet i of a block as its singleton equation.
// The payload is aliased, not copied; callers that mutate it must copy.
func SourceSymbol(i int, src Source) Symbol {
	return Symbol{
		Mask:   1 << uint(i),
		SentAt: src.SentAt,
		Len:    uint16(len(src.Payload)),
		Data:   src.Payload,
	}
}

// MakeRepair folds the repair symbol symbolID for a block of sources under
// the given seed. The returned symbol owns its Data buffer.
func MakeRepair(sources []Source, seed uint64, symbolID uint32) Symbol {
	mask := Coefficients(seed, symbolID, len(sources))
	s := Symbol{Mask: mask}
	for m := mask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		s.SentAt ^= sources[i].SentAt
		s.Len ^= uint16(len(sources[i].Payload))
		s.Data = xorInto(s.Data, sources[i].Payload)
	}
	return s
}

// xorInto XORs src into dst, growing dst to len(src) if needed (shorter
// payloads are implicitly zero-padded), and returns the possibly grown dst.
func xorInto(dst, src []byte) []byte {
	if len(src) > len(dst) {
		grown := make([]byte, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, b := range src {
		dst[i] ^= b
	}
	return dst
}

// ErrInconsistent is returned by Decode when the accepted symbols do not
// describe any block: a solved packet's folded length exceeds its folded
// data. This cannot happen for symbols produced by one honest sender; it
// flags corruption or cross-block mixing by the caller.
var ErrInconsistent = errors.New("fountcast: inconsistent symbol set")

// Decoder incrementally solves one block by Gaussian elimination over
// GF(2). Feed it symbols as they arrive with Add; once Complete reports
// true, Decode returns every source packet byte-identically.
//
// Rows are indexed by pivot — the lowest set bit of the row's reduced mask
// — so Add is O(k) XOR-fold operations and the full decode of a block is
// O(k^2) row operations, each O(symbol size) bytes. The decoder is
// deterministic: the final state depends only on the set of independent
// symbols accepted, not on arrival order (elimination over GF(2) yields the
// same row space, and back-substitution resolves each packet uniquely).
type Decoder struct {
	count int
	rank  int
	rows  [MaxBlock]*Symbol
}

// NewDecoder returns a decoder for a block of count source packets.
// count must be in [1, MaxBlock].
func NewDecoder(count int) (*Decoder, error) {
	if count <= 0 || count > MaxBlock {
		return nil, fmt.Errorf("fountcast: block of %d sources (want 1..%d)", count, MaxBlock)
	}
	return &Decoder{count: count}, nil
}

// Count returns the block size the decoder was built for.
func (d *Decoder) Count() int { return d.count }

// Rank returns the number of linearly independent symbols accepted so far.
func (d *Decoder) Rank() int { return d.rank }

// Complete reports whether the block is solvable (rank == count).
func (d *Decoder) Complete() bool { return d.rank == d.count }

// Add reduces sym against the accepted rows and keeps it if it is linearly
// independent, returning true. Dependent symbols (duplicates, or
// combinations already spanned) reduce to zero and are discarded, returning
// false. Symbols whose mask selects bits outside the block are rejected.
// The symbol's Data buffer is taken over by the decoder; callers must not
// reuse it.
func (d *Decoder) Add(sym Symbol) bool {
	if sym.Mask == 0 {
		return false
	}
	if d.count < 64 && sym.Mask>>uint(d.count) != 0 {
		return false
	}
	s := sym
	for s.Mask != 0 {
		p := bits.TrailingZeros64(s.Mask)
		r := d.rows[p]
		if r == nil {
			row := s
			d.rows[p] = &row
			d.rank++
			return true
		}
		s.Mask ^= r.Mask
		s.SentAt ^= r.SentAt
		s.Len ^= r.Len
		s.Data = xorInto(s.Data, r.Data)
	}
	return false
}

// Decode back-substitutes the solved system and returns the block's source
// packets in index order. It must only be called when Complete() is true.
// Decode is idempotent: it leaves the rows fully reduced (each a singleton
// equation), so repeated calls return the same packets.
func (d *Decoder) Decode() ([]Source, error) {
	if !d.Complete() {
		return nil, fmt.Errorf("fountcast: decode at rank %d/%d", d.rank, d.count)
	}
	// Walk pivots high to low: rows above the current pivot are already
	// singletons, so XORing them out leaves this row a singleton too.
	for p := d.count - 1; p >= 0; p-- {
		r := d.rows[p]
		for m := r.Mask &^ (1 << uint(p)); m != 0; m &= m - 1 {
			q := bits.TrailingZeros64(m)
			o := d.rows[q]
			r.Mask ^= o.Mask
			r.SentAt ^= o.SentAt
			r.Len ^= o.Len
			r.Data = xorInto(r.Data, o.Data)
		}
	}
	out := make([]Source, d.count)
	for i := 0; i < d.count; i++ {
		r := d.rows[i]
		if int(r.Len) > len(r.Data) {
			// The folded length claims more bytes than any symbol
			// carried; see ErrInconsistent.
			return nil, fmt.Errorf("%w: packet %d length %d exceeds %d data bytes",
				ErrInconsistent, i, r.Len, len(r.Data))
		}
		out[i] = Source{SentAt: r.SentAt, Payload: r.Data[:r.Len]}
	}
	return out, nil
}

// Has reports whether source packet i is already individually known — its
// row is a solved singleton. Direct data arrivals make their row a
// singleton immediately; repairs may solve packets only at Decode time.
func (d *Decoder) Has(i int) bool {
	if i < 0 || i >= d.count {
		return false
	}
	r := d.rows[i]
	return r != nil && r.Mask == 1<<uint(i)
}
