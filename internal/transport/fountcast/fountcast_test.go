package fountcast_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/fountcast"
	"adamant/internal/transport/transporttest"
	"adamant/internal/wire"
)

type harness struct {
	k        *sim.Kernel
	fab      *transporttest.Fabric
	sender   *fountcast.Sender
	recvs    []*fountcast.Receiver
	delivery [][]transport.Delivery
	lost     [][]uint64
}

// newHarness builds one sender (node 0) and n receivers (nodes 1..n) over a
// 1ms-delay fabric.
func newHarness(t *testing.T, n int, opts fountcast.Options) *harness {
	t.Helper()
	h := &harness{k: sim.New(1)}
	e := env.NewSim(h.k)
	h.fab = transporttest.New(e, time.Millisecond)
	var err error
	h.sender, err = fountcast.NewSender(transport.Config{
		Env: e, Endpoint: h.fab.Endpoint(0), Stream: 1,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	h.delivery = make([][]transport.Delivery, n)
	h.lost = make([][]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		r, err := fountcast.NewReceiver(transport.Config{
			Env:      e,
			Endpoint: h.fab.Endpoint(wire.NodeID(i + 1)),
			Stream:   1,
			SenderID: 0,
			Deliver:  func(d transport.Delivery) { h.delivery[i] = append(h.delivery[i], d) },
			OnLost:   func(seq uint64) { h.lost[i] = append(h.lost[i], seq) },
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		h.recvs = append(h.recvs, r)
	}
	return h
}

func (h *harness) publishN(t *testing.T, n int, gap time.Duration) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := h.sender.Publish([]byte(fmt.Sprintf("sample-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := h.k.RunFor(gap); err != nil {
			t.Fatal(err)
		}
	}
}

func (h *harness) finish(t *testing.T) {
	t.Helper()
	if err := h.sender.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func seqs(ds []transport.Delivery) []uint64 {
	out := make([]uint64, len(ds))
	for i, d := range ds {
		out[i] = d.Seq
	}
	return out
}

func checkOrdered(t *testing.T, ds []transport.Delivery) {
	t.Helper()
	var last uint64
	for _, d := range ds {
		if d.Seq <= last {
			t.Fatalf("out of order: %v", seqs(ds))
		}
		last = d.Seq
	}
}

func TestLosslessInOrderDelivery(t *testing.T) {
	h := newHarness(t, 2, fountcast.Options{K: 8, OverheadPct: 25})
	h.publishN(t, 20, 5*time.Millisecond)
	h.finish(t)
	for i, ds := range h.delivery {
		if len(ds) != 20 {
			t.Fatalf("receiver %d delivered %d, want 20: %v", i, len(ds), seqs(ds))
		}
		for j, d := range ds {
			if d.Seq != uint64(j+1) {
				t.Fatalf("receiver %d out of order: %v", i, seqs(ds))
			}
			if d.Recovered {
				t.Errorf("lossless run marked seq %d recovered", d.Seq)
			}
			if !bytes.Equal(d.Payload, []byte(fmt.Sprintf("sample-%d", j))) {
				t.Errorf("seq %d payload %q corrupted", d.Seq, d.Payload)
			}
		}
		st := h.recvs[i].Stats()
		if st.Recovered != 0 || st.Abandoned != 0 {
			t.Errorf("receiver %d stats %+v on lossless run", i, st)
		}
	}
}

// One dropped data packet is reconstructed from the block's repair symbol
// with no feedback round trip: the recovery completes as soon as the
// block's symbols have arrived, and the delivery carries the original
// publish timestamp and payload.
func TestSingleLossRecoveredZeroRTT(t *testing.T) {
	h := newHarness(t, 1, fountcast.Options{K: 4, OverheadPct: 25})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && pkt.Seq == 3
	}
	h.publishN(t, 8, 2*time.Millisecond)
	h.finish(t)
	ds := h.delivery[0]
	if len(ds) != 8 {
		t.Fatalf("delivered %d, want 8: %v", len(ds), seqs(ds))
	}
	checkOrdered(t, ds)
	for _, d := range ds {
		wantPayload := []byte(fmt.Sprintf("sample-%d", d.Seq-1))
		if !bytes.Equal(d.Payload, wantPayload) {
			t.Errorf("seq %d payload %q, want %q", d.Seq, d.Payload, wantPayload)
		}
		if (d.Seq == 3) != d.Recovered {
			t.Errorf("seq %d recovered=%v", d.Seq, d.Recovered)
		}
		if lat := d.Latency(); lat <= 0 || lat > 100*time.Millisecond {
			t.Errorf("seq %d latency %v implausible", d.Seq, lat)
		}
	}
	st := h.recvs[0].Stats()
	if st.Recovered != 1 || st.Abandoned != 0 || st.NaksSent != 0 {
		t.Errorf("stats %+v, want exactly one recovery and no NAKs", st)
	}
	if len(h.lost[0]) != 0 {
		t.Errorf("OnLost fired for %v on a recoverable loss", h.lost[0])
	}
}

// A two-packet burst inside one block is still recovered when the overhead
// budget provides two repair symbols — the failure mode that wipes out a
// fixed single-XOR panel.
func TestBurstLossWithinBudget(t *testing.T) {
	h := newHarness(t, 1, fountcast.Options{K: 8, OverheadPct: 50}) // 4 repairs/block
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && (pkt.Seq == 4 || pkt.Seq == 5)
	}
	h.publishN(t, 16, 2*time.Millisecond)
	h.finish(t)
	ds := h.delivery[0]
	if len(ds) != 16 {
		t.Fatalf("delivered %d, want 16: %v", len(ds), seqs(ds))
	}
	checkOrdered(t, ds)
	recovered := 0
	for _, d := range ds {
		if d.Recovered {
			recovered++
			if d.Seq != 4 && d.Seq != 5 {
				t.Errorf("unexpected recovery of seq %d", d.Seq)
			}
		}
	}
	if recovered != 2 {
		t.Errorf("recovered %d packets, want 2", recovered)
	}
}

// With zero overhead there are no repair symbols: a loss is abandoned after
// the hold window, OnLost fires, and in-order delivery continues past it.
func TestZeroOverheadAbandonsLoss(t *testing.T) {
	h := newHarness(t, 1, fountcast.Options{K: 4, OverheadPct: 0, Hold: 20 * time.Millisecond})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && pkt.Seq == 6
	}
	h.publishN(t, 12, 2*time.Millisecond)
	h.finish(t)
	ds := h.delivery[0]
	if len(ds) != 11 {
		t.Fatalf("delivered %d, want 11: %v", len(ds), seqs(ds))
	}
	checkOrdered(t, ds)
	for _, d := range ds {
		if d.Seq == 6 {
			t.Fatal("seq 6 delivered despite zero overhead")
		}
	}
	st := h.recvs[0].Stats()
	if st.Abandoned != 1 {
		t.Errorf("stats.Abandoned = %d, want 1", st.Abandoned)
	}
	if len(h.lost[0]) != 1 || h.lost[0][0] != 6 {
		t.Errorf("OnLost = %v, want [6]", h.lost[0])
	}
}

// The final partial block is flushed on Close with at least one repair, so
// a tail loss is recovered without any retransmission machinery.
func TestTailBlockRecoveredOnClose(t *testing.T) {
	h := newHarness(t, 1, fountcast.Options{K: 8, OverheadPct: 25})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && pkt.Seq == 10
	}
	h.publishN(t, 10, 2*time.Millisecond) // blocks: 1..8 full, 9..10 partial
	h.finish(t)
	ds := h.delivery[0]
	if len(ds) != 10 {
		t.Fatalf("delivered %d, want 10: %v", len(ds), seqs(ds))
	}
	checkOrdered(t, ds)
	var gotRecovered bool
	for _, d := range ds {
		if d.Seq == 10 {
			gotRecovered = d.Recovered
			if !bytes.Equal(d.Payload, []byte("sample-9")) {
				t.Errorf("tail payload %q", d.Payload)
			}
		}
	}
	if !gotRecovered {
		t.Error("tail seq 10 not marked recovered")
	}
}

// A loss beyond the repair budget (three losses, one repair) abandons only
// the missing packets; the rest of the block still delivers.
func TestLossBeyondBudgetAbandonsOnlyMissing(t *testing.T) {
	h := newHarness(t, 1, fountcast.Options{K: 8, OverheadPct: 13, Hold: 20 * time.Millisecond}) // 1 repair/block
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && (pkt.Seq == 2 || pkt.Seq == 3 || pkt.Seq == 4)
	}
	h.publishN(t, 16, 2*time.Millisecond)
	h.finish(t)
	ds := h.delivery[0]
	if len(ds) != 13 {
		t.Fatalf("delivered %d, want 13: %v", len(ds), seqs(ds))
	}
	checkOrdered(t, ds)
	st := h.recvs[0].Stats()
	if st.Abandoned != 3 {
		t.Errorf("stats.Abandoned = %d, want 3", st.Abandoned)
	}
	if len(h.lost[0]) != 3 {
		t.Errorf("OnLost = %v, want three seqs", h.lost[0])
	}
}

// The credit accumulator emits repairs at exactly the configured rate: 80
// source packets at oh=25 is 20 repair symbols, no more, no fewer.
func TestRepairRateMatchesOverhead(t *testing.T) {
	h := newHarness(t, 1, fountcast.Options{K: 8, OverheadPct: 25})
	var symbols, data int
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		switch pkt.Type {
		case wire.TypeSymbol:
			symbols++
		case wire.TypeData:
			data++
		}
		return false
	}
	h.publishN(t, 80, time.Millisecond)
	h.finish(t)
	if data != 80 {
		t.Fatalf("observed %d data packets, want 80", data)
	}
	if symbols != 20 {
		t.Errorf("observed %d repair symbols for 80 samples at oh=25, want 20", symbols)
	}
	if len(h.delivery[0]) != 80 {
		t.Errorf("delivered %d, want 80", len(h.delivery[0]))
	}
}

// Fractional credits carry across blocks: k=4 at oh=30 is 120 credits per
// block, so blocks alternate 1,1,1,1,1 repairs with the fifth block earning
// 2 — exactly 6 repairs per 5 blocks.
func TestRepairCreditsCarry(t *testing.T) {
	h := newHarness(t, 1, fountcast.Options{K: 4, OverheadPct: 30})
	var symbols int
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		if pkt.Type == wire.TypeSymbol {
			symbols++
		}
		return false
	}
	h.publishN(t, 20, time.Millisecond) // 5 full blocks
	h.finish(t)
	if symbols != 6 {
		t.Errorf("observed %d repairs for 20 samples at oh=30, want 6", symbols)
	}
}

func TestDuplicateDataSuppressed(t *testing.T) {
	h := newHarness(t, 1, fountcast.Options{K: 4, OverheadPct: 25})
	h.publishN(t, 4, 2*time.Millisecond)
	h.finish(t)
	if len(h.delivery[0]) != 4 {
		t.Fatalf("delivered %d, want 4", len(h.delivery[0]))
	}
}

func TestPublishAfterCloseFails(t *testing.T) {
	h := newHarness(t, 1, fountcast.Options{})
	if err := h.sender.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.sender.Publish([]byte("x")); err != transport.ErrClosed {
		t.Errorf("Publish after Close = %v, want ErrClosed", err)
	}
	if err := h.sender.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

func TestBaseSeqRebasedSequenceSpace(t *testing.T) {
	// A hot-swap generation starting at BaseSeq=100 numbers its first
	// sample 101 and receivers reject anything at or below the base.
	h := &harness{k: sim.New(1)}
	e := env.NewSim(h.k)
	h.fab = transporttest.New(e, time.Millisecond)
	opts := fountcast.Options{K: 4, OverheadPct: 25}
	var err error
	h.sender, err = fountcast.NewSender(transport.Config{
		Env: e, Endpoint: h.fab.Endpoint(0), Stream: 1, BaseSeq: 100,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	h.delivery = make([][]transport.Delivery, 1)
	r, err := fountcast.NewReceiver(transport.Config{
		Env:      e,
		Endpoint: h.fab.Endpoint(1),
		Stream:   1,
		SenderID: 0,
		BaseSeq:  100,
		Deliver:  func(d transport.Delivery) { h.delivery[0] = append(h.delivery[0], d) },
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	h.recvs = []*fountcast.Receiver{r}
	h.publishN(t, 6, 2*time.Millisecond)
	h.finish(t)
	ds := h.delivery[0]
	if len(ds) != 6 {
		t.Fatalf("delivered %d, want 6: %v", len(ds), seqs(ds))
	}
	if ds[0].Seq != 101 || ds[5].Seq != 106 {
		t.Errorf("seqs %v, want 101..106", seqs(ds))
	}
}

// The receiver's recovery state (holdback entries + buffered equations +
// abandoned set) stays bounded even when every other packet is lost.
// A block whose final seq is abandoned rather than delivered must still
// have its state record freed once the cursor sweeps past it. With zero
// overhead, dropping the last packet of every block forces the cursor
// through the abandoned branch at each block boundary; any surviving
// record is a leak that would eventually hit maxOpenBlocks and stall
// delivery permanently.
func TestAbandonedTailBlockFreed(t *testing.T) {
	h := newHarness(t, 1, fountcast.Options{K: 4, OverheadPct: 0, Hold: 10 * time.Millisecond})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && pkt.Seq%4 == 0 && pkt.Seq < 40
	}
	h.publishN(t, 40, 2*time.Millisecond) // 10 blocks; blocks 0..8 lose their tail
	h.finish(t)
	ds := h.delivery[0]
	if len(ds) != 31 {
		t.Fatalf("delivered %d, want 31: %v", len(ds), seqs(ds))
	}
	checkOrdered(t, ds)
	st := h.recvs[0].Stats()
	if st.Abandoned != 9 {
		t.Errorf("Abandoned = %d, want 9", st.Abandoned)
	}
	if got := h.recvs[0].OpenBlocks(); got != 0 {
		t.Errorf("OpenBlocks = %d after full drain, want 0 (abandoned-tail blocks leaked)", got)
	}
}

func TestRecoveryStateBounded(t *testing.T) {
	h := newHarness(t, 1, fountcast.Options{K: 8, OverheadPct: 25, Hold: 10 * time.Millisecond})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && pkt.Seq%2 == 0
	}
	const n = 200
	h.publishN(t, n, time.Millisecond)
	h.finish(t)
	st := h.recvs[0].Stats()
	if st.MaxBuffered > n+64 {
		t.Errorf("MaxBuffered = %d for a %d-sample stream", st.MaxBuffered, n)
	}
	if got := len(h.delivery[0]); got < n/2 {
		t.Errorf("delivered %d, want at least the surviving half (%d)", got, n/2)
	}
	checkOrdered(t, h.delivery[0])
}
