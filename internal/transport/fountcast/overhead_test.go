package fountcast_test

import (
	"math/rand"
	"testing"
	"time"

	"adamant/internal/transport/fountcast"
	"adamant/internal/wire"
)

// TestBandwidthOverheadInvariant pins the headline bandwidth claim: the
// bytes spent on repair symbols stay within 1.15x of the configured
// overhead rate relative to the bytes spent on source data, across
// overhead settings and payload seeds. The 15% slack covers the symbol
// body's fixed framing (block id, seed, XOR-folded metadata) relative to
// a data packet of the same payload size; a regression that emits extra
// symbols, over-sized masks, or duplicate repair rounds blows through it
// immediately. Recovery state must also stay bounded the whole time.
func TestBandwidthOverheadInvariant(t *testing.T) {
	const (
		samples     = 96 // multiple of every K below: no forced tail repair
		payloadSize = 256
	)
	for _, oh := range []int{10, 25, 50, 100} {
		for seed := int64(1); seed <= 3; seed++ {
			h := newHarness(t, 2, fountcast.Options{K: 8, OverheadPct: oh})
			var dataBytes, symbolBytes int
			h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
				if to != 1 { // count one receiver's copy of the multicast
					return false
				}
				switch pkt.Type {
				case wire.TypeData:
					dataBytes += pkt.EncodedSize()
				case wire.TypeSymbol:
					symbolBytes += pkt.EncodedSize()
				}
				return false
			}
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < samples; i++ {
				buf := make([]byte, payloadSize)
				rng.Read(buf)
				if err := h.sender.Publish(buf); err != nil {
					t.Fatal(err)
				}
				if err := h.k.RunFor(2 * time.Millisecond); err != nil {
					t.Fatal(err)
				}
			}
			h.finish(t)

			if dataBytes == 0 || symbolBytes == 0 {
				t.Fatalf("oh=%d seed=%d: no traffic counted (data=%d symbol=%d)",
					oh, seed, dataBytes, symbolBytes)
			}
			ratio := float64(symbolBytes) / float64(dataBytes)
			budget := 1.15 * float64(oh) / 100
			if ratio > budget {
				t.Errorf("oh=%d seed=%d: repair/source byte ratio %.4f exceeds budget %.4f (data=%d symbol=%d)",
					oh, seed, ratio, budget, dataBytes, symbolBytes)
			}
			// The rate must also not be silently under-provisioned: at
			// least the framing-free nominal share must have gone out.
			if nominal := float64(oh) / 100 * float64(samples) * payloadSize; float64(symbolBytes) < nominal {
				t.Errorf("oh=%d seed=%d: only %d repair bytes for a nominal %.0f-byte budget",
					oh, seed, symbolBytes, nominal)
			}
			for i, ds := range h.delivery {
				if len(ds) != samples {
					t.Errorf("oh=%d seed=%d: receiver %d delivered %d/%d", oh, seed, i, len(ds), samples)
				}
				checkOrdered(t, ds)
				if st := h.recvs[i].Stats(); st.MaxBuffered > samples+64 {
					t.Errorf("oh=%d seed=%d: receiver %d MaxBuffered=%d exceeds %d",
						oh, seed, i, st.MaxBuffered, samples+64)
				}
			}
		}
	}
}
