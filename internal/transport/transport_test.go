package transport_test

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"adamant/internal/env"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/transporttest"
	"adamant/internal/wire"
)

func TestSpecStringCanonical(t *testing.T) {
	tests := []struct {
		spec transport.Spec
		want string
	}{
		{transport.Spec{Name: "bemcast"}, "bemcast"},
		{transport.Spec{Name: "nakcast", Params: transport.Params{"timeout": "1ms"}},
			"nakcast(timeout=1ms)"},
		{transport.Spec{Name: "ricochet", Params: transport.Params{"r": "4", "c": "3"}},
			"ricochet(c=3,r=4)"}, // params sorted
	}
	for _, tt := range tests {
		if got := tt.spec.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestParseSpec(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"bemcast", "bemcast", false},
		{"nakcast(timeout=1ms)", "nakcast(timeout=1ms)", false},
		{"ricochet(r=4,c=3)", "ricochet(c=3,r=4)", false},
		{"ricochet( r = 4 , c = 3 )", "ricochet(c=3,r=4)", false},
		{"  bemcast  ", "bemcast", false},
		{"", "", true},
		{"x(", "", true},
		{"(r=4)", "", true},
		{"x(r)", "", true},
		{"x(r=)", "", true},
		{"x(r=1,r=2)", "", true},
		{"x)y", "", true},
	}
	for _, tt := range tests {
		got, err := transport.ParseSpec(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q) succeeded, want error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tt.in, err)
			continue
		}
		if got.String() != tt.want {
			t.Errorf("ParseSpec(%q) = %q, want %q", tt.in, got.String(), tt.want)
		}
	}
}

// Property: canonical strings round-trip through ParseSpec.
func TestSpecRoundTripProperty(t *testing.T) {
	names := []string{"a", "proto", "nakcast"}
	keys := []string{"r", "c", "timeout", "k1"}
	f := func(nameIdx, nParams uint8, vals [4]uint16) bool {
		spec := transport.Spec{Name: names[int(nameIdx)%len(names)], Params: transport.Params{}}
		n := int(nParams) % 5
		for i := 0; i < n && i < len(keys); i++ {
			spec.Params[keys[i]] = time.Duration(vals[i]).String()
		}
		parsed, err := transport.ParseSpec(spec.String())
		if err != nil {
			return false
		}
		return parsed.String() == spec.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParamsHelpers(t *testing.T) {
	p := transport.Params{"r": "4", "timeout": "25ms", "bad": "xyz"}
	if v, err := p.Int("r", 9); err != nil || v != 4 {
		t.Errorf("Int(r) = %d, %v", v, err)
	}
	if v, err := p.Int("absent", 9); err != nil || v != 9 {
		t.Errorf("Int(absent) = %d, %v", v, err)
	}
	if _, err := p.Int("bad", 0); err == nil {
		t.Error("Int(bad) should error")
	}
	if v, err := p.Duration("timeout", time.Second); err != nil || v != 25*time.Millisecond {
		t.Errorf("Duration(timeout) = %v, %v", v, err)
	}
	if v, err := p.Duration("absent", time.Second); err != nil || v != time.Second {
		t.Errorf("Duration(absent) = %v, %v", v, err)
	}
	if _, err := p.Duration("bad", 0); err == nil {
		t.Error("Duration(bad) should error")
	}
}

func TestPropertiesString(t *testing.T) {
	p := transport.PropMulticast | transport.PropFEC
	s := p.String()
	if !strings.Contains(s, "multicast") || !strings.Contains(s, "fec") {
		t.Errorf("String() = %q", s)
	}
	if !p.Has(transport.PropMulticast) {
		t.Error("Has(multicast) = false")
	}
	if p.Has(transport.PropOrdered) {
		t.Error("Has(ordered) = true")
	}
	if transport.Properties(0).String() != "none" {
		t.Error("zero properties should stringify as none")
	}
}

func TestRegistry(t *testing.T) {
	reg := transport.NewRegistry()
	mk := func(name string) *transport.Factory {
		return &transport.Factory{
			Name: name,
			NewSender: func(transport.Config, transport.Params) (transport.Sender, error) {
				return nil, nil
			},
			NewReceiver: func(transport.Config, transport.Params) (transport.Receiver, error) {
				return nil, nil
			},
		}
	}
	if err := reg.Register(mk("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(mk("alpha")); err == nil {
		t.Error("duplicate registration should error")
	}
	if err := reg.Register(nil); err == nil {
		t.Error("nil factory should error")
	}
	if err := reg.Register(&transport.Factory{Name: "incomplete"}); err == nil {
		t.Error("factory without constructors should error")
	}
	if _, err := reg.Lookup("alpha"); err != nil {
		t.Errorf("Lookup(alpha): %v", err)
	}
	if _, err := reg.Lookup("missing"); err == nil {
		t.Error("Lookup(missing) should error")
	}
	if err := reg.Register(mk("beta")); err != nil {
		t.Fatal(err)
	}
	names := reg.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("Names() = %v", names)
	}
	if _, err := reg.NewSender(transport.Spec{Name: "nope"}, transport.Config{}); err == nil {
		t.Error("NewSender with unknown spec should error")
	}
	if _, err := reg.NewReceiver(transport.Spec{Name: "nope"}, transport.Config{}); err == nil {
		t.Error("NewReceiver with unknown spec should error")
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.New(1)
	e := env.NewSim(k)
	fab := transporttest.New(e, time.Millisecond)
	ep := fab.Endpoint(0)

	c := transport.Config{}
	if err := c.ValidateSender(); err == nil {
		t.Error("empty config should fail sender validation")
	}
	c.Env = e
	if err := c.ValidateSender(); err == nil {
		t.Error("config without endpoint should fail")
	}
	c.Endpoint = ep
	if err := c.ValidateSender(); err != nil {
		t.Errorf("sender config: %v", err)
	}
	if err := c.ValidateReceiver(); err == nil {
		t.Error("receiver config without Deliver should fail")
	}
	c.Deliver = func(transport.Delivery) {}
	if err := c.ValidateReceiver(); err != nil {
		t.Errorf("receiver config: %v", err)
	}
}

func TestMuxFanOutAndFallback(t *testing.T) {
	k := sim.New(1)
	e := env.NewSim(k)
	fab := transporttest.New(e, time.Millisecond)
	a, b := fab.Endpoint(0), fab.Endpoint(1)
	mux := transport.NewMux(b)

	var dataA, dataB, rest int
	mux.Handle(wire.TypeData, func(wire.NodeID, *wire.Packet) { dataA++ })
	mux.Handle(wire.TypeData, func(wire.NodeID, *wire.Packet) { dataB++ })
	mux.HandleRest(func(wire.NodeID, *wire.Packet) { rest++ })

	send := func(typ wire.Type) {
		pkt := &wire.Packet{Type: typ, Src: 0, Stream: 1, Seq: 1, SentAt: k.Now()}
		if err := a.Unicast(1, pkt); err != nil {
			t.Fatal(err)
		}
	}
	send(wire.TypeData)
	send(wire.TypeNak)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if dataA != 1 || dataB != 1 {
		t.Errorf("fan-out: handlers saw %d/%d, want 1/1", dataA, dataB)
	}
	if rest != 1 {
		t.Errorf("fallback saw %d, want 1", rest)
	}
	if mux.Endpoint() != b {
		t.Error("Mux.Endpoint() wrong")
	}
}

func TestDeliveryLatency(t *testing.T) {
	d := transport.Delivery{
		SentAt:      time.Unix(0, 0),
		DeliveredAt: time.Unix(0, int64(3*time.Millisecond)),
	}
	if d.Latency() != 3*time.Millisecond {
		t.Errorf("Latency = %v", d.Latency())
	}
}

func TestStaticReceivers(t *testing.T) {
	f := transport.StaticReceivers(3, 1, 2)
	got := f()
	if len(got) != 3 || got[0] != 3 || got[1] != 1 || got[2] != 2 {
		t.Errorf("StaticReceivers() = %v", got)
	}
}
