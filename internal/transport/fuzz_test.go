package transport_test

import (
	"testing"

	"adamant/internal/transport"
)

// FuzzParseSpec asserts the spec parser is total and canonicalizing:
// anything it accepts must round-trip through its canonical string.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"bemcast",
		"nakcast(timeout=1ms)",
		"ricochet(c=3,r=4)",
		"x(a=1,b=2,c=3)",
		"(",
		"a(b=)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := transport.ParseSpec(in)
		if err != nil {
			return
		}
		canon := spec.String()
		again, err := transport.ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q failed to re-parse: %v", canon, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, again.String())
		}
	})
}
