package transport_test

import (
	"testing"

	"adamant/internal/transport"
)

// FuzzParseSpec asserts the spec parser is total and canonicalizing:
// anything it accepts must round-trip through its canonical string.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"bemcast",
		"nakcast(timeout=1ms)",
		"ricochet(c=3,r=4)",
		"x(a=1,b=2,c=3)",
		"(",
		"a(b=)",
		"fountcast(k=8,oh=25)",
		"fountcast(k=1,oh=0)",
		"fountcast(k=64,oh=100)",
		"fountcast(hb=100ms,hold=40ms,k=8,oh=25,proc=50µs)",
		"fountcast(k=,oh=25)",
		"fountcast(k=8,k=9)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := transport.ParseSpec(in)
		if err != nil {
			return
		}
		canon := spec.String()
		again, err := transport.ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q failed to re-parse: %v", canon, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, again.String())
		}
	})
}
