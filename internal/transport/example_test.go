package transport_test

import (
	"fmt"

	"adamant/internal/transport"
)

func ExampleParseSpec() {
	spec, err := transport.ParseSpec("ricochet(r=4,c=3)")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(spec.Name)
	fmt.Println(spec.String()) // canonical form sorts parameters
	// Output:
	// ricochet
	// ricochet(c=3,r=4)
}

func ExampleSpec_String() {
	spec := transport.Spec{
		Name:   "nakcast",
		Params: transport.Params{"timeout": "1ms"},
	}
	fmt.Println(spec)
	// Output: nakcast(timeout=1ms)
}

func ExampleProperties_String() {
	props := transport.PropMulticast | transport.PropFEC
	fmt.Println(props)
	fmt.Println(props.Has(transport.PropMulticast))
	fmt.Println(props.Has(transport.PropOrdered))
	// Output:
	// multicast+fec
	// true
	// false
}
