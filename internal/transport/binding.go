package transport

import (
	"errors"
	"fmt"
	"time"

	"adamant/internal/env"
	"adamant/internal/wire"
)

// This file implements epoch-based hot-swappable transport bindings: the
// drain-and-handoff state machine that lets a live stream change protocol
// (e.g. nakcast -> ricochet) with no sample loss, no duplicates, and
// preserved per-stream ordering.
//
// Model: every protocol instance belongs to an *epoch* (a binding
// generation, stamped into each packet's header). A swap closes the old
// sender at a cut sequence — it stops publishing but keeps serving recovery
// for its own epoch — and starts the new protocol with BaseSeq = cut, so
// the epochs own disjoint, contiguous slices of one sequence space:
// epoch e covers (base_e, cut_e]. The swap is announced in-band (TypeRebind
// carrying the full chain of switches) and re-announced periodically, so
// receivers partitioned across one or several swaps can reconstruct every
// generation they missed. On the receiver side, deliveries from a newer
// epoch are held back until every earlier *ordered* epoch has accounted for
// its whole slice (each sequence delivered or reported lost), which
// preserves per-stream ordering across the swap; unordered epochs
// (ricochet, bemcast) never promised ordering, so they complete as soon as
// their cut is known.

const (
	// announceInterval is how often a sender binding re-multicasts its
	// rebind chain once at least one swap has happened. A lost announcement
	// is recovered by the next period.
	announceInterval = 100 * time.Millisecond
	// announceLinger is how many further announcements are sent after the
	// binding closes, so receivers healing from a partition late in the run
	// can still learn the chain. Bounded so a closed binding quiesces.
	announceLinger = 10
	// maxParked bounds packets buffered for epochs the receiver has not
	// learned yet (the announcement is still in flight). Dropped packets
	// are recovered by the new epoch's own protocol, or stay lost on
	// best-effort transports.
	maxParked = 512
	// maxBindingEpochs bounds the rebind chain; it must not exceed the wire
	// format's announcement record cap.
	maxBindingEpochs = 32
)

// BindingConfig configures a hot-swappable sender or receiver binding.
type BindingConfig struct {
	Config
	// Registry resolves protocol specs to factories.
	Registry *Registry
	// Spec is the initial (epoch-0) protocol.
	Spec Spec
	// OnTransportChanged, when non-nil, is invoked on the receiver side
	// each time a new epoch is activated locally (the middleware's
	// TRANSPORT_CHANGED status).
	OnTransportChanged func(epoch uint16, spec Spec)
}

func (bc *BindingConfig) validate() error {
	if bc.Registry == nil {
		return errors.New("transport: binding config missing Registry")
	}
	if bc.Spec.Name == "" {
		return errors.New("transport: binding config missing Spec")
	}
	return nil
}

// epochRouter owns the endpoint handler and dispatches ingress packets to
// per-epoch protocol instances by the packet's epoch stamp.
type epochRouter struct {
	ep        Endpoint
	routes    map[uint16]*epochEndpoint
	onRebind  func(src wire.NodeID, pkt *wire.Packet)
	onUnknown func(src wire.NodeID, pkt *wire.Packet)
}

func newEpochRouter(ep Endpoint) *epochRouter {
	r := &epochRouter{ep: ep, routes: make(map[uint16]*epochEndpoint)}
	ep.SetHandler(r.dispatch)
	return r
}

func (r *epochRouter) dispatch(src wire.NodeID, pkt *wire.Packet) {
	if pkt.Type == wire.TypeRebind {
		if r.onRebind != nil {
			r.onRebind(src, pkt)
		}
		return
	}
	if e, ok := r.routes[pkt.Epoch]; ok {
		if e.handler != nil {
			e.handler(src, pkt)
		}
		return
	}
	if r.onUnknown != nil {
		r.onUnknown(src, pkt)
	}
}

// route returns the endpoint view for one epoch, creating it on first use.
// Each protocol instance owns exactly one epoch's endpoint handler.
func (r *epochRouter) route(epoch uint16) *epochEndpoint {
	if e, ok := r.routes[epoch]; ok {
		return e
	}
	e := &epochEndpoint{parent: r, epoch: epoch}
	r.routes[epoch] = e
	return e
}

// inject feeds a locally synthesized packet to an epoch's handler as if it
// had arrived from the network.
func (r *epochRouter) inject(epoch uint16, src wire.NodeID, pkt *wire.Packet) {
	if e, ok := r.routes[epoch]; ok && e.handler != nil {
		e.handler(src, pkt)
	}
}

// epochEndpoint is an epoch-scoped view of the endpoint: egress packets are
// stamped with the epoch, ingress packets were routed to it by that stamp.
type epochEndpoint struct {
	parent  *epochRouter
	epoch   uint16
	handler func(src wire.NodeID, pkt *wire.Packet)
}

var _ Endpoint = (*epochEndpoint)(nil)

func (e *epochEndpoint) Local() wire.NodeID { return e.parent.ep.Local() }
func (e *epochEndpoint) MTU() int           { return e.parent.ep.MTU() }

func (e *epochEndpoint) Unicast(dst wire.NodeID, pkt *wire.Packet) error {
	pkt.Epoch = e.epoch
	return e.parent.ep.Unicast(dst, pkt)
}

func (e *epochEndpoint) Multicast(pkt *wire.Packet) error {
	pkt.Epoch = e.epoch
	return e.parent.ep.Multicast(pkt)
}

func (e *epochEndpoint) Work(cost time.Duration) time.Duration                { return e.parent.ep.Work(cost) }
func (e *epochEndpoint) ScaleCPU(d time.Duration) time.Duration               { return e.parent.ep.ScaleCPU(d) }
func (e *epochEndpoint) SetHandler(h func(src wire.NodeID, pkt *wire.Packet)) { e.handler = h }

// SenderBinding owns the writer side of one stream across epochs. It
// implements Sender; Swap performs a live protocol change.
type SenderBinding struct {
	cfg    Config
	reg    *Registry
	router *epochRouter

	epoch   uint16
	cur     Sender
	curSpec Spec
	old     []Sender
	chain   []wire.RebindRecord

	swaps      int
	lastSwapAt time.Time
	annTimer   env.Timer
	lingerLeft int
	closed     bool
}

var _ Sender = (*SenderBinding)(nil)

// NewSenderBinding builds the writer-side binding with its epoch-0 protocol
// instance.
func NewSenderBinding(bc BindingConfig) (*SenderBinding, error) {
	if err := bc.validate(); err != nil {
		return nil, err
	}
	if err := bc.Config.ValidateSender(); err != nil {
		return nil, err
	}
	b := &SenderBinding{cfg: bc.Config, reg: bc.Registry}
	b.router = newEpochRouter(bc.Config.Endpoint)
	cfg := b.cfg
	cfg.Endpoint = b.router.route(0)
	s, err := bc.Registry.NewSender(bc.Spec, cfg)
	if err != nil {
		return nil, err
	}
	b.cur, b.curSpec = s, bc.Spec
	b.chain = []wire.RebindRecord{{Epoch: 0, Cut: bc.Config.BaseSeq, Spec: bc.Spec.String()}}
	return b, nil
}

// Publish implements Sender through the current epoch's protocol.
func (b *SenderBinding) Publish(payload []byte) error {
	if b.closed {
		return ErrClosed
	}
	return b.cur.Publish(payload)
}

// Seq implements Sender. Epoch bases chain the instances onto one shared
// sequence space, so this is the stream-global published count.
func (b *SenderBinding) Seq() uint64 { return b.cur.Seq() }

// Epoch returns the current binding generation.
func (b *SenderBinding) Epoch() uint16 { return b.epoch }

// Spec returns the current epoch's protocol spec.
func (b *SenderBinding) Spec() Spec { return b.curSpec }

// Swaps returns how many live protocol swaps have been performed.
func (b *SenderBinding) Swaps() int { return b.swaps }

// Chain returns a copy of the rebind chain, oldest first. Record e's Cut is
// the sequence where epoch e-1 ends and epoch e begins publishing.
func (b *SenderBinding) Chain() []wire.RebindRecord {
	return append([]wire.RebindRecord(nil), b.chain...)
}

// Swap hands the stream over to a new protocol. The new instance is built
// first (a failed swap leaves the old binding untouched), then the old
// sender is closed at the cut — it stops publishing and heartbeating but
// keeps serving recovery for its own epoch per its protocol's contract —
// and the swap is announced in-band immediately and then periodically, so
// receivers partitioned across the swap still learn the chain.
func (b *SenderBinding) Swap(spec Spec) error {
	if b.closed {
		return ErrClosed
	}
	if spec.String() == b.curSpec.String() {
		return nil
	}
	if len(b.chain) >= maxBindingEpochs {
		return fmt.Errorf("transport: rebind chain full (%d epochs)", len(b.chain))
	}
	cut := b.cur.Seq()
	next := b.epoch + 1
	cfg := b.cfg
	cfg.BaseSeq = cut
	cfg.Endpoint = b.router.route(next)
	ns, err := b.reg.NewSender(spec, cfg)
	if err != nil {
		return err
	}
	old := b.cur
	b.old = append(b.old, old)
	b.cur, b.curSpec, b.epoch = ns, spec, next
	b.chain = append(b.chain, wire.RebindRecord{Epoch: next, Cut: cut, Spec: spec.String()})
	b.swaps++
	b.lastSwapAt = b.cfg.Env.Now()
	_ = old.Close()
	b.announce()
	b.armAnnounce()
	return nil
}

// LastSwapAt returns when the most recent swap happened (zero if none).
func (b *SenderBinding) LastSwapAt() time.Time { return b.lastSwapAt }

// Close implements Sender: every epoch instance closes (protocols may keep
// serving recovery per their own post-Close contracts). If any swap
// happened, the chain keeps being announced for a short bounded linger so
// receivers healing from a partition late in the run can still finish old
// epochs; the linger is finite, so a closed binding always quiesces.
func (b *SenderBinding) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	err := b.cur.Close()
	for _, s := range b.old {
		_ = s.Close()
	}
	if b.swaps > 0 {
		b.lingerLeft = announceLinger
		b.announce()
		b.armAnnounce()
	}
	return err
}

func (b *SenderBinding) announce() {
	body, err := (&wire.RebindBody{Records: b.chain}).Encode(nil)
	if err != nil {
		return
	}
	pkt := &wire.Packet{
		Type:    wire.TypeRebind,
		Src:     b.cfg.Endpoint.Local(),
		Stream:  b.cfg.Stream,
		Epoch:   b.epoch,
		SentAt:  b.cfg.Env.Now(),
		Payload: body,
	}
	// Announcement loss surfaces as parked packets at receivers until the
	// next period; nothing useful to do with an error here.
	_ = b.cfg.Endpoint.Multicast(pkt)
}

func (b *SenderBinding) armAnnounce() {
	if b.annTimer != nil {
		return
	}
	b.annTimer = b.cfg.Env.After(announceInterval, b.fireAnnounce)
}

func (b *SenderBinding) fireAnnounce() {
	b.annTimer = nil
	if b.swaps == 0 {
		return
	}
	if b.closed {
		if b.lingerLeft <= 0 {
			return
		}
		b.lingerLeft--
	}
	b.announce()
	b.annTimer = b.cfg.Env.After(announceInterval, b.fireAnnounce)
}

// epochState tracks one protocol generation on the receiver side.
type epochState struct {
	epoch    uint16
	spec     Spec
	props    Properties
	recv     Receiver
	base     uint64 // previous epoch's cut: this epoch publishes from base+1
	cut      uint64 // this epoch's final sequence; meaningful once cutKnown
	cutKnown bool
	covered  uint64 // sequences in (base, cut] delivered or reported lost
	done     bool
	held     []Delivery // deliveries gated behind an earlier draining epoch

	superseded   bool
	supersededAt time.Time // when a newer epoch was first activated locally
	doneAt       time.Time
}

// EpochInfo is a harness-facing snapshot of one receiver-side epoch.
type EpochInfo struct {
	Epoch    uint16
	Spec     Spec
	Props    Properties
	Base     uint64
	Cut      uint64
	CutKnown bool
	Done     bool
	// DrainLatency is how long the epoch took to finish after a newer epoch
	// took over locally: the receiver-observed drain-and-handoff cost.
	DrainLatency time.Duration
}

// ReceiverBinding owns the reader side of one stream across epochs. It
// implements Receiver and follows the sender's swaps via in-band rebind
// announcements.
type ReceiverBinding struct {
	cfg      Config
	reg      *Registry
	router   *epochRouter
	onChange func(epoch uint16, spec Spec)

	epochs map[uint16]*epochState
	order  []uint16            // instantiated epochs, ascending
	chain  []wire.RebindRecord // learned chain; index == epoch number

	parked      []parkedPacket
	parkedDrops uint64

	delivered  uint64
	recoveredN uint64
	holdHigh   uint64 // holdback+parked high-water; counts toward MaxBuffered
	closed     bool
}

type parkedPacket struct {
	src wire.NodeID
	pkt *wire.Packet
}

var _ Receiver = (*ReceiverBinding)(nil)

// NewReceiverBinding builds the reader-side binding with its epoch-0
// protocol instance.
func NewReceiverBinding(bc BindingConfig) (*ReceiverBinding, error) {
	if err := bc.validate(); err != nil {
		return nil, err
	}
	if err := bc.Config.ValidateReceiver(); err != nil {
		return nil, err
	}
	b := &ReceiverBinding{
		cfg:      bc.Config,
		reg:      bc.Registry,
		onChange: bc.OnTransportChanged,
		epochs:   make(map[uint16]*epochState),
	}
	b.router = newEpochRouter(bc.Config.Endpoint)
	b.router.onRebind = b.onRebind
	b.router.onUnknown = b.park
	if _, err := b.addEpoch(0, bc.Config.BaseSeq, bc.Spec); err != nil {
		return nil, err
	}
	b.chain = []wire.RebindRecord{{Epoch: 0, Cut: bc.Config.BaseSeq, Spec: bc.Spec.String()}}
	return b, nil
}

// addEpoch instantiates one protocol generation. Callers add epochs in
// ascending order (the chain is dense from 0).
func (b *ReceiverBinding) addEpoch(epoch uint16, base uint64, spec Spec) (*epochState, error) {
	f, err := b.reg.Lookup(spec.Name)
	if err != nil {
		return nil, err
	}
	es := &epochState{epoch: epoch, spec: spec, props: f.Props, base: base}
	cfg := b.cfg
	cfg.BaseSeq = base
	cfg.Endpoint = b.router.route(epoch)
	cfg.Deliver = func(d Delivery) { b.onDeliver(es, d) }
	cfg.OnLost = func(seq uint64) { b.onLost(es, seq) }
	recv, err := b.reg.NewReceiver(spec, cfg)
	if err != nil {
		return nil, err
	}
	es.recv = recv
	now := b.cfg.Env.Now()
	for _, ep := range b.order {
		if old := b.epochs[ep]; !old.superseded {
			old.superseded, old.supersededAt = true, now
		}
	}
	b.epochs[epoch] = es
	b.order = append(b.order, epoch)
	return es, nil
}

// Epoch returns the newest locally activated binding generation.
func (b *ReceiverBinding) Epoch() uint16 { return b.order[len(b.order)-1] }

// Spec returns the newest locally activated epoch's protocol spec.
func (b *ReceiverBinding) Spec() Spec { return b.epochs[b.Epoch()].spec }

// Epochs returns a snapshot of every instantiated epoch, ascending.
func (b *ReceiverBinding) Epochs() []EpochInfo {
	out := make([]EpochInfo, 0, len(b.order))
	for _, ep := range b.order {
		es := b.epochs[ep]
		info := EpochInfo{
			Epoch: es.epoch, Spec: es.spec, Props: es.props,
			Base: es.base, Cut: es.cut, CutKnown: es.cutKnown, Done: es.done,
		}
		if es.done && es.superseded && es.doneAt.After(es.supersededAt) {
			info.DrainLatency = es.doneAt.Sub(es.supersededAt)
		}
		out = append(out, info)
	}
	return out
}

// ParkedDrops returns how many packets were dropped because they arrived
// for an epoch the receiver had not learned yet and the parking buffer was
// full.
func (b *ReceiverBinding) ParkedDrops() uint64 { return b.parkedDrops }

// Stats implements Receiver: protocol counters summed across epochs, with
// Delivered/Recovered replaced by the binding's app-visible counts (samples
// still gated behind a draining epoch have not reached the application) and
// MaxBuffered the max of per-instance high-waters and the binding's own
// holdback/parking high-water.
func (b *ReceiverBinding) Stats() ReceiverStats {
	var out ReceiverStats
	for _, ep := range b.order {
		st := b.epochs[ep].recv.Stats()
		out.Duplicates += st.Duplicates
		out.NaksSent += st.NaksSent
		out.RepairsSent += st.RepairsSent
		out.RepairsUsed += st.RepairsUsed
		out.RepairsUseless += st.RepairsUseless
		out.Abandoned += st.Abandoned
		out.OutOfWindow += st.OutOfWindow
		if st.MaxBuffered > out.MaxBuffered {
			out.MaxBuffered = st.MaxBuffered
		}
	}
	if b.holdHigh > out.MaxBuffered {
		out.MaxBuffered = b.holdHigh
	}
	out.Delivered = b.delivered
	out.Recovered = b.recoveredN
	return out
}

// Close implements Receiver.
func (b *ReceiverBinding) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	for _, ep := range b.order {
		_ = b.epochs[ep].recv.Close()
	}
	b.parked = nil
	return nil
}

func (b *ReceiverBinding) onRebind(src wire.NodeID, pkt *wire.Packet) {
	if b.closed || pkt.Stream != b.cfg.Stream {
		return
	}
	body, err := wire.DecodeRebind(pkt.Payload)
	if err != nil {
		return
	}
	b.learnChain(body.Records)
}

// learnChain extends the local chain with any records not seen yet and
// instantiates their protocol generations. Chains are append-only and dense
// from epoch 0, so a record either is already known or extends the tail.
func (b *ReceiverBinding) learnChain(records []wire.RebindRecord) {
	var newest *epochState
	for _, rec := range records {
		if int(rec.Epoch) < len(b.chain) {
			continue
		}
		if int(rec.Epoch) != len(b.chain) || len(b.chain) >= maxBindingEpochs {
			break // gap or overflow: wait for a well-formed announcement
		}
		spec, err := ParseSpec(rec.Spec)
		if err != nil {
			break
		}
		es, err := b.addEpoch(rec.Epoch, rec.Cut, spec)
		if err != nil {
			break
		}
		b.chain = append(b.chain, rec)
		if prev, ok := b.epochs[rec.Epoch-1]; ok {
			prev.cut, prev.cutKnown = rec.Cut, true
		}
		newest = es
	}
	if newest != nil {
		b.replayParked()
		if b.onChange != nil {
			b.onChange(newest.epoch, newest.spec)
		}
	}
	// Re-run on every announcement, not just on news: the synthetic EOS
	// below is also the retry path that re-solicits ACKs from re-admitted
	// receivers after a partition heals.
	b.injectEOS()
	b.checkProgress()
}

// injectEOS synthesizes the old sender's end-of-stream heartbeat for every
// superseded, incomplete, ordered epoch whose cut is known. NAK-based
// receivers use it to open tail-gap recovery up to the cut (the real EOS
// heartbeat sent at swap time may have been lost); ACK-based receivers
// answer any heartbeat with a fresh ACK, prompting the old sender to
// re-admit and backfill them. Repeats are cheap protocol no-ops.
func (b *ReceiverBinding) injectEOS() {
	for _, ep := range b.order {
		es := b.epochs[ep]
		if !es.cutKnown || es.done || !es.props.Has(PropOrdered) {
			continue
		}
		body, err := (&wire.HeartbeatBody{HighSeq: es.cut}).Encode(nil)
		if err != nil {
			continue
		}
		b.router.inject(es.epoch, b.cfg.SenderID, &wire.Packet{
			Type:    wire.TypeHeartbeat,
			Flags:   wire.FlagEOS,
			Src:     b.cfg.SenderID,
			Stream:  b.cfg.Stream,
			Seq:     es.cut,
			Epoch:   es.epoch,
			SentAt:  b.cfg.Env.Now(),
			Payload: body,
		})
	}
}

// park buffers a packet whose epoch the receiver has not learned yet; it is
// replayed into the epoch's instance once an announcement teaches us the
// chain.
func (b *ReceiverBinding) park(src wire.NodeID, pkt *wire.Packet) {
	if b.closed {
		return
	}
	if len(b.parked) >= maxParked {
		b.parkedDrops++
		return
	}
	b.parked = append(b.parked, parkedPacket{src: src, pkt: pkt.Clone()})
	b.noteHold()
}

func (b *ReceiverBinding) replayParked() {
	if len(b.parked) == 0 {
		return
	}
	pending := b.parked
	b.parked = nil
	for _, pp := range pending {
		if _, ok := b.epochs[pp.pkt.Epoch]; ok {
			b.router.inject(pp.pkt.Epoch, pp.src, pp.pkt)
		} else {
			b.parked = append(b.parked, pp)
		}
	}
}

func (b *ReceiverBinding) onDeliver(es *epochState, d Delivery) {
	if b.closed {
		return
	}
	// Coverage counts protocol-level accounting, not app hand-up: every
	// delivery's sequence lies in this epoch's (base, cut] slice, and a
	// sequence is delivered at most once (or reported lost, never both).
	es.covered++
	if b.gated(es) {
		es.held = append(es.held, d)
		b.noteHold()
		b.checkProgress()
		return
	}
	b.handUp(d)
	b.checkProgress()
}

func (b *ReceiverBinding) onLost(es *epochState, seq uint64) {
	es.covered++
	if b.cfg.OnLost != nil {
		b.cfg.OnLost(seq)
	}
	if !b.closed {
		b.checkProgress()
	}
}

// gated reports whether deliveries from es must be held because an earlier
// ordered epoch has not drained its slice yet.
func (b *ReceiverBinding) gated(es *epochState) bool {
	for _, ep := range b.order {
		if ep >= es.epoch {
			return false
		}
		prior := b.epochs[ep]
		if prior.props.Has(PropOrdered) && !prior.done {
			return true
		}
	}
	return false
}

// checkProgress recomputes epoch completion and flushes deliveries held
// behind drained epochs. An ordered epoch is done when every sequence in
// (base, cut] has been delivered or declared lost; an unordered epoch is
// done as soon as its cut is known — it never promised ordering, so nothing
// downstream waits on its stragglers.
func (b *ReceiverBinding) checkProgress() {
	now := b.cfg.Env.Now()
	blocked := false
	for _, ep := range b.order {
		es := b.epochs[ep]
		if !es.done && es.cutKnown {
			if !es.props.Has(PropOrdered) || es.covered >= es.cut-es.base {
				es.done, es.doneAt = true, now
			}
		}
		if !blocked && len(es.held) > 0 {
			held := es.held
			es.held = nil
			for _, d := range held {
				// Held samples land when the gate opens; restamping keeps
				// app-visible delivery times monotonic.
				d.DeliveredAt = now
				b.handUp(d)
			}
		}
		if es.props.Has(PropOrdered) && !es.done {
			blocked = true
		}
	}
}

func (b *ReceiverBinding) handUp(d Delivery) {
	b.delivered++
	if d.Recovered {
		b.recoveredN++
	}
	b.cfg.Deliver(d)
}

func (b *ReceiverBinding) noteHold() {
	n := uint64(len(b.parked))
	for _, ep := range b.order {
		n += uint64(len(b.epochs[ep].held))
	}
	if n > b.holdHigh {
		b.holdHigh = n
	}
}
