package ann

import (
	"bytes"
	"testing"
)

// trainedBytes trains a fresh network with the given worker count and
// returns its serialized weights.
func trainedBytes(t *testing.T, ds *Dataset, jobs int) []byte {
	t.Helper()
	net, err := New(Config{Layers: []int{6, 16, 4}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Train(ds, TrainOptions{MaxEpochs: 60, DesiredError: 1e-9, Jobs: jobs}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTrainParallelByteIdentical is the ISSUE's determinism contract:
// trained weights must be byte-identical across -jobs 1/2/8. The dataset
// spans several gradient shards so the parallel path is fully exercised.
func TestTrainParallelByteIdentical(t *testing.T) {
	ds := randomDataset(6, 4, 120, 42)
	serial := trainedBytes(t, ds, 1)
	for _, jobs := range []int{2, 8} {
		if got := trainedBytes(t, ds, jobs); !bytes.Equal(got, serial) {
			t.Errorf("jobs=%d produced different trained weights than jobs=1", jobs)
		}
	}
}

func TestCrossValidateParallelIdentical(t *testing.T) {
	ds := randomDataset(5, 3, 90, 11)
	cfg := Config{Layers: []int{5, 12, 3}, Seed: 3}
	opts := TrainOptions{MaxEpochs: 40, DesiredError: 1e-9}
	optsSerial := opts
	optsSerial.Jobs = 1
	serial, err := CrossValidate(cfg, ds, 6, optsSerial)
	if err != nil {
		t.Fatal(err)
	}
	optsPar := opts
	optsPar.Jobs = 8
	par, err := CrossValidate(cfg, ds, 6, optsPar)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.FoldAccuracy) != len(par.FoldAccuracy) {
		t.Fatalf("fold count: %d vs %d", len(serial.FoldAccuracy), len(par.FoldAccuracy))
	}
	for f := range serial.FoldAccuracy {
		if serial.FoldAccuracy[f] != par.FoldAccuracy[f] {
			t.Errorf("fold %d accuracy %v (serial) != %v (8 workers)", f, serial.FoldAccuracy[f], par.FoldAccuracy[f])
		}
	}
	if serial.MeanAccuracy != par.MeanAccuracy || serial.TrainAccuracy != par.TrainAccuracy {
		t.Errorf("aggregate accuracy mismatch: %+v vs %+v", serial, par)
	}
}

func TestRunBatchMatchesRun(t *testing.T) {
	ds := randomDataset(9, 6, 77, 5) // deliberately not a multiple of the tile width
	net, err := New(Config{Layers: []int{9, 24, 6}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := net.RunBatch(ds.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != ds.Len() {
		t.Fatalf("RunBatch returned %d outputs, want %d", len(outs), ds.Len())
	}
	for s, in := range ds.Inputs {
		want, err := net.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		for o := range want {
			if outs[s][o] != want[o] {
				t.Fatalf("sample %d output %d: RunBatch %v != Run %v", s, o, outs[s][o], want[o])
			}
		}
	}
}

func TestAccuracyBatchMatchesClassify(t *testing.T) {
	ds := randomDataset(4, 3, 50, 9)
	net, err := New(Config{Layers: []int{4, 10, 3}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := net.AccuracyBatch(ds.Inputs, ds.Targets)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for s, in := range ds.Inputs {
		cls, err := net.Classify(in)
		if err != nil {
			t.Fatal(err)
		}
		if cls == argmax(ds.Targets[s]) {
			correct++
		}
	}
	if want := float64(correct) / float64(ds.Len()); batch != want {
		t.Errorf("AccuracyBatch = %v, per-sample Classify gives %v", batch, want)
	}
	classes := make([]int, ds.Len())
	if err := net.ClassifyBatch(ds.Inputs, classes); err != nil {
		t.Fatal(err)
	}
	for s, in := range ds.Inputs {
		cls, _ := net.Classify(in)
		if classes[s] != cls {
			t.Fatalf("sample %d: ClassifyBatch %d != Classify %d", s, classes[s], cls)
		}
	}
}

func TestRunBatchShapeErrors(t *testing.T) {
	net, err := New(Config{Layers: []int{3, 4, 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.RunBatch(nil); err == nil {
		t.Error("RunBatch(nil) should error")
	}
	if _, err := net.RunBatch([][]float64{{1, 2}}); err == nil {
		t.Error("RunBatch with wrong input width should error")
	}
	if _, err := net.AccuracyBatch([][]float64{{1, 2, 3}}, [][]float64{{1}}); err == nil {
		t.Error("AccuracyBatch with wrong target width should error")
	}
	if _, err := net.AccuracyBatch([][]float64{{1, 2, 3}}, nil); err == nil {
		t.Error("AccuracyBatch with missing targets should error")
	}
}
