package ann

import "testing"

func TestMomentumSentinel(t *testing.T) {
	cases := []struct {
		in   float64
		want float64
		desc string
	}{
		{0, 0.1, "zero value selects the FANN default"},
		{-1, 0, "-1 means a true zero-momentum run"},
		{-0.25, 0, "any negative value means zero momentum"},
		{0.3, 0.3, "explicit positive value passes through"},
	}
	for _, c := range cases {
		opts := TrainOptions{Momentum: c.in}
		if got := opts.momentum(); got != c.want {
			t.Errorf("Momentum=%v: resolved %v, want %v (%s)", c.in, got, c.want, c.desc)
		}
	}
}

// TestMomentumSentinelSurvivesFillDefaults guards the trap the sentinel
// design avoids: fillDefaults must not resolve Momentum, otherwise
// filling twice would turn an explicit -1 (zero momentum) into 0 and
// then into the 0.1 default.
func TestMomentumSentinelSurvivesFillDefaults(t *testing.T) {
	opts := TrainOptions{Momentum: -1}
	opts.fillDefaults()
	opts.fillDefaults()
	if opts.Momentum != -1 {
		t.Fatalf("fillDefaults mutated Momentum to %v", opts.Momentum)
	}
	if got := opts.momentum(); got != 0 {
		t.Fatalf("after double fillDefaults, momentum() = %v, want 0", got)
	}
}

// TestZeroMomentumDiffersFromDefault verifies a zero-momentum run is
// actually expressible: it must train differently from the 0.1 default.
func TestZeroMomentumDiffersFromDefault(t *testing.T) {
	ds := randomDataset(4, 2, 30, 17)
	train := func(momentum float64) []float64 {
		net, err := New(Config{Layers: []int{4, 8, 2}, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		opts := TrainOptions{Algorithm: Incremental, MaxEpochs: 10, DesiredError: 1e-9, Momentum: momentum}
		if _, err := net.Train(ds, opts); err != nil {
			t.Fatal(err)
		}
		out, err := net.Run(ds.Inputs[0])
		if err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), out...)
	}
	def := train(0)
	zero := train(-1)
	same := true
	for i := range def {
		if def[i] != zero[i] {
			same = false
		}
	}
	if same {
		t.Fatal("Momentum=-1 trained identically to the default; zero momentum is not taking effect")
	}
}
