// Package ann implements a small feed-forward artificial neural network in
// the style of the FANN library the paper uses as ADAMANT's supervised-
// learning knowledge base: fully connected layers, sigmoid activations with
// configurable steepness, batch iRPROP- and incremental backpropagation
// training with an MSE stopping error, a text save/load format, and k-fold
// cross-validation helpers.
//
// Querying a trained network is a single forward pass over a fixed set of
// connections — constant time, no allocation — which is what gives ADAMANT
// its bounded (sub-10-microsecond) configuration decisions.
//
// Internally every per-connection array (weights, gradients, RPROP state)
// lives in one contiguous backing slice, laid out as one [input weights,
// bias] row per output neuron so the forward pass walks memory linearly.
// The text save format and seeded weight initialization keep the package's
// historical [in][out] column order, so saved models and seeds remain
// bit-compatible with earlier versions; see DESIGN.md ("Flat-weight ANN
// kernels").
package ann

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
)

// Size limits enforced by Validate (and therefore by Load): they keep a
// malformed or hostile saved model from driving make() into a runtime
// panic while allowing networks orders of magnitude larger than the
// paper's 9-24-6 configurator.
const (
	maxLayerNeurons = 1 << 16
	maxConnections  = 1 << 24
)

// Config describes a network shape.
type Config struct {
	// Layers gives the neuron count per layer, input first, output last.
	// Must have at least two layers.
	Layers []int
	// Steepness is the sigmoid steepness (FANN default 0.5).
	Steepness float64
	// Seed drives deterministic weight initialization.
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.Steepness == 0 {
		c.Steepness = 0.5
	}
}

// Validate reports config errors.
func (c Config) Validate() error {
	if len(c.Layers) < 2 {
		return errors.New("ann: need at least input and output layers")
	}
	for i, n := range c.Layers {
		if n <= 0 {
			return fmt.Errorf("ann: layer %d has %d neurons", i, n)
		}
		if n > maxLayerNeurons {
			return fmt.Errorf("ann: layer %d has %d neurons (max %d)", i, n, maxLayerNeurons)
		}
	}
	var total int64
	for l := 0; l < len(c.Layers)-1; l++ {
		total += int64(c.Layers[l]+1) * int64(c.Layers[l+1])
		if total > maxConnections {
			return fmt.Errorf("ann: network exceeds %d connections", maxConnections)
		}
	}
	if c.Steepness < 0 || math.IsNaN(c.Steepness) || math.IsInf(c.Steepness, 0) {
		return errors.New("ann: invalid steepness")
	}
	return nil
}

// Network is a fully connected feed-forward net. Create with New or Load.
// A Network is not safe for concurrent use (Train coordinates its own
// internal workers; see TrainOptions.Jobs).
type Network struct {
	layers    []int
	steepness float64

	// weights holds every connection in one contiguous array. Layer l's
	// block spans woff[l]:woff[l+1] and contains layers[l+1] rows of
	// layers[l]+1 values each: output neuron o's input weights in input
	// order, then its bias, so Run streams both the row and the input
	// activations sequentially.
	weights []float64
	woff    []int

	// acts is the forward-pass scratch, all layers in one array; layer l
	// spans aoff[l]:aoff[l]+layers[l]. Reused across Run calls.
	acts []float64
	aoff []int

	// Training scratch (allocated lazily by ensureTrainScratch). deltas
	// mirrors acts; grads/prevG/stepSz mirror weights.
	deltas []float64
	grads  []float64
	prevG  []float64
	stepSz []float64

	// Parallel-gradient state (see epochGradient): per-shard gradient
	// buffers, per-shard SSE, and per-worker forward/backward scratch.
	shardGrads [][]float64
	shardSSE   []float64
	workers    []trainScratch

	// batch is the RunBatch/AccuracyBatch activation tile, lazily sized.
	batch []float64
}

// New builds a network with random weights in [-0.1, 0.1] (FANN-style
// randomization range).
func New(cfg Config) (*Network, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		layers:    append([]int(nil), cfg.Layers...),
		steepness: cfg.Steepness,
	}
	n.woff = make([]int, len(n.layers))
	total := 0
	for l := 0; l < len(n.layers)-1; l++ {
		n.woff[l] = total
		total += (n.layers[l] + 1) * n.layers[l+1]
	}
	n.woff[len(n.layers)-1] = total
	n.weights = make([]float64, total)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for l := 0; l < len(n.layers)-1; l++ {
		inN, outN := n.layers[l], n.layers[l+1]
		base, rl := n.woff[l], inN+1
		// Draw in the historical [in][out] order so a given seed yields
		// exactly the weights it always has.
		for k := 0; k < rl*outN; k++ {
			n.weights[base+oldOrderIndex(k, inN, outN)] = (rng.Float64()*2 - 1) * 0.1
		}
	}
	n.initScratch()
	return n, nil
}

func (n *Network) initScratch() {
	n.aoff = make([]int, len(n.layers))
	total := 0
	for i, sz := range n.layers {
		n.aoff[i] = total
		total += sz
	}
	n.acts = make([]float64, total)
}

// Layers returns a copy of the layer sizes.
func (n *Network) Layers() []int { return append([]int(nil), n.layers...) }

// NumConnections returns the total connection count including biases.
func (n *Network) NumConnections() int { return n.woff[len(n.layers)-1] }

func (n *Network) sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-2*n.steepness*x))
}

// forward computes the forward pass into the given activation scratch
// (laid out like n.acts) and returns the output-layer slice. Bit-for-bit
// it performs the same additions in the same order as every earlier
// version of this package: bias first, then inputs in ascending order.
func (n *Network) forward(acts []float64, input []float64) []float64 {
	copy(acts[:n.layers[0]], input)
	for l := 0; l < len(n.layers)-1; l++ {
		in := acts[n.aoff[l] : n.aoff[l]+n.layers[l]]
		out := acts[n.aoff[l+1] : n.aoff[l+1]+n.layers[l+1]]
		w := n.weights[n.woff[l]:n.woff[l+1]]
		rl := len(in) + 1
		for o := range out {
			row := w[o*rl : o*rl+rl : o*rl+rl]
			sum := row[len(in)] // bias
			for i, v := range in {
				sum += v * row[i]
			}
			out[o] = n.sigmoid(sum)
		}
	}
	return acts[n.aoff[len(n.layers)-1]:]
}

// Run computes the forward pass. The returned slice aliases internal
// scratch and is valid until the next Run/Train call; copy to retain.
func (n *Network) Run(input []float64) ([]float64, error) {
	if len(input) != n.layers[0] {
		return nil, fmt.Errorf("ann: input size %d, want %d", len(input), n.layers[0])
	}
	return n.forward(n.acts, input), nil
}

// Classify runs the input and returns the argmax output index.
func (n *Network) Classify(input []float64) (int, error) {
	out, err := n.Run(input)
	if err != nil {
		return 0, err
	}
	return argmax(out), nil
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// Dataset is a supervised training set.
type Dataset struct {
	Inputs  [][]float64
	Targets [][]float64
}

// Add appends one sample. Input and target are copied together into a
// single backing allocation.
func (d *Dataset) Add(input, target []float64) {
	buf := make([]float64, len(input)+len(target))
	in := buf[:len(input):len(input)]
	tg := buf[len(input):]
	copy(in, input)
	copy(tg, target)
	d.Inputs = append(d.Inputs, in)
	d.Targets = append(d.Targets, tg)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Inputs) }

// Subset returns the dataset restricted to the given sample indices
// (sharing storage).
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{
		Inputs:  make([][]float64, len(idx)),
		Targets: make([][]float64, len(idx)),
	}
	for i, j := range idx {
		s.Inputs[i] = d.Inputs[j]
		s.Targets[i] = d.Targets[j]
	}
	return s
}

// OneHot builds a one-hot target vector of the given width.
func OneHot(width, class int) []float64 {
	t := make([]float64, width)
	if class >= 0 && class < width {
		t[class] = 1
	}
	return t
}

// oldOrderIndex maps index k of the historical [in][out] column-major
// weight layout (bias row last) onto the flat [out][in+bias] row layout,
// for a layer with inN inputs and outN outputs. Save, Load, and New use
// it so the text format and seeded initialization never change.
func oldOrderIndex(k, inN, outN int) int {
	return (k%outN)*(inN+1) + k/outN
}

// Save writes the network in the text format read by Load.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "ADAMANT-ANN 1\n")
	fmt.Fprintf(bw, "steepness %s\n", strconv.FormatFloat(n.steepness, 'g', -1, 64))
	fmt.Fprintf(bw, "layers")
	for _, sz := range n.layers {
		fmt.Fprintf(bw, " %d", sz)
	}
	fmt.Fprintln(bw)
	for l := 0; l < len(n.layers)-1; l++ {
		inN, outN := n.layers[l], n.layers[l+1]
		base := n.woff[l]
		fmt.Fprintf(bw, "weights %d", l)
		for k := 0; k < (inN+1)*outN; k++ {
			v := n.weights[base+oldOrderIndex(k, inN, outN)]
			fmt.Fprintf(bw, " %s", strconv.FormatFloat(v, 'g', -1, 64))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// SaveFile writes the network to path.
func (n *Network) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := n.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a network saved by Save. Malformed input returns an error
// (never panics); shape limits are enforced by Config.Validate before any
// large allocation happens.
func Load(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	line := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	hdr, err := line()
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(hdr, "ADAMANT-ANN 1") {
		return nil, fmt.Errorf("ann: bad header %q", hdr)
	}
	stLine, err := line()
	if err != nil {
		return nil, err
	}
	var steep float64
	if _, err := fmt.Sscanf(stLine, "steepness %g", &steep); err != nil {
		return nil, fmt.Errorf("ann: bad steepness line %q: %w", stLine, err)
	}
	lyLine, err := line()
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(lyLine)
	if len(fields) < 3 || fields[0] != "layers" {
		return nil, fmt.Errorf("ann: bad layers line %q", lyLine)
	}
	layers := make([]int, 0, len(fields)-1)
	for _, f := range fields[1:] {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("ann: bad layer size %q: %w", f, err)
		}
		layers = append(layers, v)
	}
	n, err := New(Config{Layers: layers, Steepness: steep})
	if err != nil {
		return nil, err
	}
	for l := 0; l < len(layers)-1; l++ {
		wl, err := line()
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(wl)
		inN, outN := layers[l], layers[l+1]
		want := (inN+1)*outN + 2
		if len(fields) != want || fields[0] != "weights" || fields[1] != strconv.Itoa(l) {
			return nil, fmt.Errorf("ann: bad weights line for layer %d (%d fields, want %d)",
				l, len(fields), want)
		}
		base := n.woff[l]
		for k, f := range fields[2:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("ann: bad weight %q: %w", f, err)
			}
			n.weights[base+oldOrderIndex(k, inN, outN)] = v
		}
	}
	return n, nil
}

// LoadFile reads a network from path.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
