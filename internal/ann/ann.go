// Package ann implements a small feed-forward artificial neural network in
// the style of the FANN library the paper uses as ADAMANT's supervised-
// learning knowledge base: fully connected layers, sigmoid activations with
// configurable steepness, batch iRPROP- and incremental backpropagation
// training with an MSE stopping error, a text save/load format, and k-fold
// cross-validation helpers.
//
// Querying a trained network is a single forward pass over a fixed set of
// connections — constant time, no allocation — which is what gives ADAMANT
// its bounded (sub-10-microsecond) configuration decisions.
package ann

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
)

// Config describes a network shape.
type Config struct {
	// Layers gives the neuron count per layer, input first, output last.
	// Must have at least two layers.
	Layers []int
	// Steepness is the sigmoid steepness (FANN default 0.5).
	Steepness float64
	// Seed drives deterministic weight initialization.
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.Steepness == 0 {
		c.Steepness = 0.5
	}
}

// Validate reports config errors.
func (c Config) Validate() error {
	if len(c.Layers) < 2 {
		return errors.New("ann: need at least input and output layers")
	}
	for i, n := range c.Layers {
		if n <= 0 {
			return fmt.Errorf("ann: layer %d has %d neurons", i, n)
		}
	}
	if c.Steepness < 0 {
		return errors.New("ann: negative steepness")
	}
	return nil
}

// Network is a fully connected feed-forward net. Create with New or Load.
// A Network is not safe for concurrent use.
type Network struct {
	layers    []int
	steepness float64
	// weights[l] connects layer l to l+1: (layers[l]+1) x layers[l+1]
	// values, bias row last, laid out [in*outCount + out].
	weights [][]float64

	// Scratch buffers reused across Run calls (no allocation per query).
	acts [][]float64
	// Training scratch (allocated lazily).
	deltas [][]float64
	grads  [][]float64
	prevG  [][]float64
	stepSz [][]float64
}

// New builds a network with random weights in [-0.1, 0.1] (FANN-style
// randomization range).
func New(cfg Config) (*Network, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		layers:    append([]int(nil), cfg.Layers...),
		steepness: cfg.Steepness,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n.weights = make([][]float64, len(n.layers)-1)
	for l := 0; l < len(n.layers)-1; l++ {
		n.weights[l] = make([]float64, (n.layers[l]+1)*n.layers[l+1])
		for i := range n.weights[l] {
			n.weights[l][i] = (rng.Float64()*2 - 1) * 0.1
		}
	}
	n.initScratch()
	return n, nil
}

func (n *Network) initScratch() {
	n.acts = make([][]float64, len(n.layers))
	for i, sz := range n.layers {
		n.acts[i] = make([]float64, sz)
	}
}

// Layers returns a copy of the layer sizes.
func (n *Network) Layers() []int { return append([]int(nil), n.layers...) }

// NumConnections returns the total connection count including biases.
func (n *Network) NumConnections() int {
	total := 0
	for l := 0; l < len(n.layers)-1; l++ {
		total += (n.layers[l] + 1) * n.layers[l+1]
	}
	return total
}

func (n *Network) sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-2*n.steepness*x))
}

// Run computes the forward pass. The returned slice aliases internal
// scratch and is valid until the next Run/Train call; copy to retain.
func (n *Network) Run(input []float64) ([]float64, error) {
	if len(input) != n.layers[0] {
		return nil, fmt.Errorf("ann: input size %d, want %d", len(input), n.layers[0])
	}
	copy(n.acts[0], input)
	for l := 0; l < len(n.layers)-1; l++ {
		in, out := n.acts[l], n.acts[l+1]
		w := n.weights[l]
		outN := n.layers[l+1]
		for o := 0; o < outN; o++ {
			sum := w[len(in)*outN+o] // bias row
			for i, v := range in {
				sum += v * w[i*outN+o]
			}
			out[o] = n.sigmoid(sum)
		}
	}
	return n.acts[len(n.acts)-1], nil
}

// Classify runs the input and returns the argmax output index.
func (n *Network) Classify(input []float64) (int, error) {
	out, err := n.Run(input)
	if err != nil {
		return 0, err
	}
	return argmax(out), nil
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// Dataset is a supervised training set.
type Dataset struct {
	Inputs  [][]float64
	Targets [][]float64
}

// Add appends one sample (copied).
func (d *Dataset) Add(input, target []float64) {
	d.Inputs = append(d.Inputs, append([]float64(nil), input...))
	d.Targets = append(d.Targets, append([]float64(nil), target...))
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Inputs) }

// Subset returns the dataset restricted to the given sample indices
// (sharing storage).
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{
		Inputs:  make([][]float64, len(idx)),
		Targets: make([][]float64, len(idx)),
	}
	for i, j := range idx {
		s.Inputs[i] = d.Inputs[j]
		s.Targets[i] = d.Targets[j]
	}
	return s
}

// OneHot builds a one-hot target vector of the given width.
func OneHot(width, class int) []float64 {
	t := make([]float64, width)
	if class >= 0 && class < width {
		t[class] = 1
	}
	return t
}

// Algorithm selects the training algorithm.
type Algorithm int

// Training algorithms.
const (
	// RPROP is batch iRPROP- (FANN's default training algorithm).
	RPROP Algorithm = iota
	// Incremental is classic online backpropagation with momentum.
	Incremental
)

// TrainOptions tune Train.
type TrainOptions struct {
	// MaxEpochs bounds training. Default 5000.
	MaxEpochs int
	// DesiredError is the MSE stopping error (the paper uses 0.0001 for
	// its best-performing configurations, 0.01 for the coarse ones).
	DesiredError float64
	// Algorithm selects RPROP (default) or Incremental.
	Algorithm Algorithm
	// LearningRate applies to Incremental. Default 0.7 (FANN default).
	LearningRate float64
	// Momentum applies to Incremental. Default 0.1.
	Momentum float64
}

func (o *TrainOptions) fillDefaults() {
	if o.MaxEpochs <= 0 {
		o.MaxEpochs = 5000
	}
	if o.DesiredError <= 0 {
		o.DesiredError = 1e-4
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.7
	}
	if o.Momentum < 0 {
		o.Momentum = 0
	} else if o.Momentum == 0 {
		o.Momentum = 0.1
	}
}

// TrainResult reports a training run.
type TrainResult struct {
	Epochs    int
	MSE       float64
	Converged bool // reached DesiredError before MaxEpochs
}

// Train fits the network to ds.
func (n *Network) Train(ds *Dataset, opts TrainOptions) (TrainResult, error) {
	opts.fillDefaults()
	if ds.Len() == 0 {
		return TrainResult{}, errors.New("ann: empty dataset")
	}
	for i := range ds.Inputs {
		if len(ds.Inputs[i]) != n.layers[0] || len(ds.Targets[i]) != n.layers[len(n.layers)-1] {
			return TrainResult{}, fmt.Errorf("ann: sample %d shape mismatch", i)
		}
	}
	n.ensureTrainScratch()
	var res TrainResult
	for epoch := 1; epoch <= opts.MaxEpochs; epoch++ {
		var mse float64
		switch opts.Algorithm {
		case RPROP:
			mse = n.epochRPROP(ds)
		case Incremental:
			mse = n.epochIncremental(ds, opts.LearningRate, opts.Momentum)
		default:
			return res, fmt.Errorf("ann: unknown algorithm %d", opts.Algorithm)
		}
		res.Epochs = epoch
		res.MSE = mse
		if mse <= opts.DesiredError {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

func (n *Network) ensureTrainScratch() {
	if n.deltas != nil {
		return
	}
	n.deltas = make([][]float64, len(n.layers))
	for i, sz := range n.layers {
		n.deltas[i] = make([]float64, sz)
	}
	n.grads = make([][]float64, len(n.weights))
	n.prevG = make([][]float64, len(n.weights))
	n.stepSz = make([][]float64, len(n.weights))
	for l := range n.weights {
		n.grads[l] = make([]float64, len(n.weights[l]))
		n.prevG[l] = make([]float64, len(n.weights[l]))
		n.stepSz[l] = make([]float64, len(n.weights[l]))
		for i := range n.stepSz[l] {
			n.stepSz[l][i] = 0.1 // RPROP delta0
		}
	}
}

// backprop runs one forward+backward pass accumulating gradients into
// n.grads and returns the sample's summed squared error.
func (n *Network) backprop(input, target []float64) float64 {
	out, _ := n.Run(input)
	last := len(n.layers) - 1
	var sse float64
	for o, v := range out {
		err := target[o] - v
		sse += err * err
		// dE/dnet with sigmoid derivative (steepness-scaled).
		n.deltas[last][o] = err * 2 * n.steepness * v * (1 - v)
	}
	for l := last - 1; l >= 1; l-- {
		outN := n.layers[l+1]
		w := n.weights[l]
		for i := 0; i < n.layers[l]; i++ {
			var sum float64
			for o := 0; o < outN; o++ {
				sum += n.deltas[l+1][o] * w[i*outN+o]
			}
			v := n.acts[l][i]
			n.deltas[l][i] = sum * 2 * n.steepness * v * (1 - v)
		}
	}
	for l := 0; l < len(n.weights); l++ {
		outN := n.layers[l+1]
		inN := n.layers[l]
		g := n.grads[l]
		for o := 0; o < outN; o++ {
			d := n.deltas[l+1][o]
			for i := 0; i < inN; i++ {
				g[i*outN+o] += d * n.acts[l][i]
			}
			g[inN*outN+o] += d // bias
		}
	}
	return sse
}

func (n *Network) epochRPROP(ds *Dataset) float64 {
	for l := range n.grads {
		clear(n.grads[l])
	}
	var sse float64
	for s := range ds.Inputs {
		sse += n.backprop(ds.Inputs[s], ds.Targets[s])
	}
	const (
		etaPlus  = 1.2
		etaMinus = 0.5
		deltaMax = 50.0
		deltaMin = 1e-6
	)
	for l := range n.weights {
		w, g, pg, st := n.weights[l], n.grads[l], n.prevG[l], n.stepSz[l]
		for i := range w {
			sign := g[i] * pg[i]
			switch {
			case sign > 0:
				st[i] = math.Min(st[i]*etaPlus, deltaMax)
				w[i] += sgn(g[i]) * st[i]
				pg[i] = g[i]
			case sign < 0:
				st[i] = math.Max(st[i]*etaMinus, deltaMin)
				pg[i] = 0 // iRPROP-: skip update after a sign flip
			default:
				w[i] += sgn(g[i]) * st[i]
				pg[i] = g[i]
			}
		}
	}
	return sse / float64(ds.Len()*n.layers[len(n.layers)-1])
}

func (n *Network) epochIncremental(ds *Dataset, rate, momentum float64) float64 {
	var sse float64
	for s := range ds.Inputs {
		for l := range n.grads {
			clear(n.grads[l])
		}
		sse += n.backprop(ds.Inputs[s], ds.Targets[s])
		for l := range n.weights {
			w, g, pg := n.weights[l], n.grads[l], n.prevG[l]
			for i := range w {
				step := rate*g[i] + momentum*pg[i]
				w[i] += step
				pg[i] = step
			}
		}
	}
	return sse / float64(ds.Len()*n.layers[len(n.layers)-1])
}

func sgn(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// MSE returns the mean squared error over ds.
func (n *Network) MSE(ds *Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("ann: empty dataset")
	}
	var sse float64
	for s := range ds.Inputs {
		out, err := n.Run(ds.Inputs[s])
		if err != nil {
			return 0, err
		}
		for o, v := range out {
			e := ds.Targets[s][o] - v
			sse += e * e
		}
	}
	return sse / float64(ds.Len()*n.layers[len(n.layers)-1]), nil
}

// Accuracy returns the fraction of samples whose Classify matches the
// target argmax.
func (n *Network) Accuracy(ds *Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("ann: empty dataset")
	}
	correct := 0
	for s := range ds.Inputs {
		got, err := n.Classify(ds.Inputs[s])
		if err != nil {
			return 0, err
		}
		if got == argmax(ds.Targets[s]) {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// Save writes the network in the text format read by Load.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "ADAMANT-ANN 1\n")
	fmt.Fprintf(bw, "steepness %s\n", strconv.FormatFloat(n.steepness, 'g', -1, 64))
	fmt.Fprintf(bw, "layers")
	for _, sz := range n.layers {
		fmt.Fprintf(bw, " %d", sz)
	}
	fmt.Fprintln(bw)
	for l, ws := range n.weights {
		fmt.Fprintf(bw, "weights %d", l)
		for _, v := range ws {
			fmt.Fprintf(bw, " %s", strconv.FormatFloat(v, 'g', -1, 64))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// SaveFile writes the network to path.
func (n *Network) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := n.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a network saved by Save.
func Load(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	line := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	hdr, err := line()
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(hdr, "ADAMANT-ANN 1") {
		return nil, fmt.Errorf("ann: bad header %q", hdr)
	}
	stLine, err := line()
	if err != nil {
		return nil, err
	}
	var steep float64
	if _, err := fmt.Sscanf(stLine, "steepness %g", &steep); err != nil {
		return nil, fmt.Errorf("ann: bad steepness line %q: %w", stLine, err)
	}
	lyLine, err := line()
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(lyLine)
	if len(fields) < 3 || fields[0] != "layers" {
		return nil, fmt.Errorf("ann: bad layers line %q", lyLine)
	}
	layers := make([]int, 0, len(fields)-1)
	for _, f := range fields[1:] {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("ann: bad layer size %q: %w", f, err)
		}
		layers = append(layers, v)
	}
	n, err := New(Config{Layers: layers, Steepness: steep})
	if err != nil {
		return nil, err
	}
	for l := 0; l < len(layers)-1; l++ {
		wl, err := line()
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(wl)
		want := (layers[l]+1)*layers[l+1] + 2
		if len(fields) != want || fields[0] != "weights" || fields[1] != strconv.Itoa(l) {
			return nil, fmt.Errorf("ann: bad weights line for layer %d (%d fields, want %d)",
				l, len(fields), want)
		}
		for i, f := range fields[2:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("ann: bad weight %q: %w", f, err)
			}
			n.weights[l][i] = v
		}
	}
	return n, nil
}

// LoadFile reads a network from path.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
