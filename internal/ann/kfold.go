package ann

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// KFold partitions sample indices 0..n-1 into k shuffled, mutually
// exclusive folds whose sizes differ by at most one. The paper's Figure 19
// uses 10-fold cross-validation: each fold serves once as the test set
// while the other k-1 folds train.
func KFold(n, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, errors.New("ann: k must be >= 2")
	}
	if n < k {
		return nil, fmt.Errorf("ann: cannot split %d samples into %d folds", n, k)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	folds := make([][]int, k)
	for i, v := range idx {
		folds[i%k] = append(folds[i%k], v)
	}
	return folds, nil
}

// CVResult reports one cross-validation run.
type CVResult struct {
	// FoldAccuracy is the held-out classification accuracy per fold.
	FoldAccuracy []float64
	// MeanAccuracy averages FoldAccuracy.
	MeanAccuracy float64
	// TrainAccuracy is the mean training-set accuracy across folds
	// (the "environments known a priori" number).
	TrainAccuracy float64
}

// CrossValidate trains one fresh network per fold (same Config, fold-
// dependent seed) and evaluates held-out accuracy — the paper's
// "environments unknown until runtime" methodology. Folds are independent
// and run concurrently on up to opts.Jobs workers; because every fold's
// network, seed, and training set are functions of the fold index alone,
// the result is identical at any Jobs value.
func CrossValidate(cfg Config, ds *Dataset, k int, opts TrainOptions) (CVResult, error) {
	folds, err := KFold(ds.Len(), k, cfg.Seed)
	if err != nil {
		return CVResult{}, err
	}
	opts.fillDefaults()
	// One contiguous slab holds every fold's training indices: fold f
	// trains on all samples except its own, so each view is n-len(fold f)
	// indices carved out of the same allocation.
	n := ds.Len()
	slab := make([]int, 0, k*n-n)
	trainIdx := make([][]int, k)
	for f := range folds {
		start := len(slab)
		for g, fold := range folds {
			if g != f {
				slab = append(slab, fold...)
			}
		}
		trainIdx[f] = slab[start:len(slab):len(slab)]
	}

	type foldOut struct {
		testAcc  float64
		trainAcc float64
		err      error
	}
	out := make([]foldOut, k)
	runFold := func(f int, jobs int) {
		foldCfg := cfg
		foldCfg.Seed = cfg.Seed*1000 + int64(f)
		net, err := New(foldCfg)
		if err != nil {
			out[f].err = err
			return
		}
		foldOpts := opts
		foldOpts.Jobs = jobs
		trainSet := ds.Subset(trainIdx[f])
		if _, err := net.Train(trainSet, foldOpts); err != nil {
			out[f].err = err
			return
		}
		if out[f].testAcc, err = net.Accuracy(ds.Subset(folds[f])); err != nil {
			out[f].err = err
			return
		}
		out[f].trainAcc, out[f].err = net.Accuracy(trainSet)
	}
	if workers := min(opts.Jobs, k); workers <= 1 {
		for f := 0; f < k; f++ {
			runFold(f, opts.Jobs)
		}
	} else {
		// Folds are the coarser unit of work, so give each fold a serial
		// trainer rather than oversubscribing with nested shard workers.
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					f := int(next.Add(1))
					if f >= k {
						return
					}
					runFold(f, 1)
				}
			}()
		}
		wg.Wait()
	}

	res := CVResult{FoldAccuracy: make([]float64, 0, k)}
	for f := 0; f < k; f++ {
		if out[f].err != nil {
			return CVResult{}, out[f].err
		}
		res.FoldAccuracy = append(res.FoldAccuracy, out[f].testAcc)
		res.MeanAccuracy += out[f].testAcc / float64(k)
		res.TrainAccuracy += out[f].trainAcc / float64(k)
	}
	return res, nil
}
