package ann

import (
	"errors"
	"fmt"
	"math/rand"
)

// KFold partitions sample indices 0..n-1 into k shuffled, mutually
// exclusive folds whose sizes differ by at most one. The paper's Figure 19
// uses 10-fold cross-validation: each fold serves once as the test set
// while the other k-1 folds train.
func KFold(n, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, errors.New("ann: k must be >= 2")
	}
	if n < k {
		return nil, fmt.Errorf("ann: cannot split %d samples into %d folds", n, k)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	folds := make([][]int, k)
	for i, v := range idx {
		folds[i%k] = append(folds[i%k], v)
	}
	return folds, nil
}

// CVResult reports one cross-validation run.
type CVResult struct {
	// FoldAccuracy is the held-out classification accuracy per fold.
	FoldAccuracy []float64
	// MeanAccuracy averages FoldAccuracy.
	MeanAccuracy float64
	// TrainAccuracy is the mean training-set accuracy across folds
	// (the "environments known a priori" number).
	TrainAccuracy float64
}

// CrossValidate trains one fresh network per fold (same Config, fold-
// dependent seed) and evaluates held-out accuracy — the paper's
// "environments unknown until runtime" methodology.
func CrossValidate(cfg Config, ds *Dataset, k int, opts TrainOptions) (CVResult, error) {
	folds, err := KFold(ds.Len(), k, cfg.Seed)
	if err != nil {
		return CVResult{}, err
	}
	var res CVResult
	for f, testIdx := range folds {
		var trainIdx []int
		for g, fold := range folds {
			if g != f {
				trainIdx = append(trainIdx, fold...)
			}
		}
		foldCfg := cfg
		foldCfg.Seed = cfg.Seed*1000 + int64(f)
		net, err := New(foldCfg)
		if err != nil {
			return CVResult{}, err
		}
		trainSet := ds.Subset(trainIdx)
		if _, err := net.Train(trainSet, opts); err != nil {
			return CVResult{}, err
		}
		testAcc, err := net.Accuracy(ds.Subset(testIdx))
		if err != nil {
			return CVResult{}, err
		}
		trainAcc, err := net.Accuracy(trainSet)
		if err != nil {
			return CVResult{}, err
		}
		res.FoldAccuracy = append(res.FoldAccuracy, testAcc)
		res.MeanAccuracy += testAcc / float64(k)
		res.TrainAccuracy += trainAcc / float64(k)
	}
	return res, nil
}
