// Package bench measures ANN inference latency distributions.
//
// The paper's central quantitative claim (Sect. 5.3) is that the ANN
// knowledge base selects a transport in bounded, sub-10 µs time. Survey
// work on DDS performance (Peeroo et al.) stresses that tail latency —
// not the mean — is what bounds a DRE system's admission decisions, so
// this package reports full per-query distributions (p50/p90/p99/p99.9/
// max) measured with a warm cache, the GC pinned, and allocation-free
// queries, rather than a single averaged number.
package bench

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"adamant/internal/ann"
	"adamant/internal/metrics"
)

// Options tune a latency measurement run.
type Options struct {
	// Queries is the number of timed Classify calls. Default 100000.
	Queries int
	// Warmup is the number of untimed calls run first so caches, branch
	// predictors, and lazily-grown scratch are hot. Default 2000.
	Warmup int
	// KeepGC leaves the garbage collector enabled during the timed
	// region. By default the GC is disabled (and a collection forced
	// beforehand) so queries measure the kernel, not collector noise;
	// Classify itself is allocation-free either way.
	KeepGC bool
}

func (o *Options) fillDefaults() {
	if o.Queries <= 0 {
		o.Queries = 100000
	}
	if o.Warmup <= 0 {
		o.Warmup = 2000
	}
}

// Distribution summarizes a latency sample set in microseconds.
type Distribution struct {
	Queries  int     `json:"queries"`
	MeanUs   float64 `json:"mean_us"`
	StdDevUs float64 `json:"stddev_us"`
	MinUs    float64 `json:"min_us"`
	P50Us    float64 `json:"p50_us"`
	P90Us    float64 `json:"p90_us"`
	P99Us    float64 `json:"p99_us"`
	P999Us   float64 `json:"p999_us"`
	MaxUs    float64 `json:"max_us"`
}

// Scale returns the distribution with every latency multiplied by f —
// used to project measurements onto slower emulated hosts the same way
// the netem platform profiles scale transport timings.
func (d Distribution) Scale(f float64) Distribution {
	s := d
	s.MeanUs *= f
	s.StdDevUs *= f
	s.MinUs *= f
	s.P50Us *= f
	s.P90Us *= f
	s.P99Us *= f
	s.P999Us *= f
	s.MaxUs *= f
	return s
}

// nearest-rank quantile over an ascending sample set.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// MeasureClassify times individual Classify calls against the given
// inputs (cycled round-robin) and returns the latency distribution.
func MeasureClassify(net *ann.Network, inputs [][]float64, opts Options) (Distribution, error) {
	opts.fillDefaults()
	if len(inputs) == 0 {
		return Distribution{}, errors.New("bench: no inputs")
	}
	// Validate up front so the timed loop can't error.
	for i, in := range inputs {
		if _, err := net.Classify(in); err != nil {
			return Distribution{}, fmt.Errorf("bench: input %d: %w", i, err)
		}
	}
	samples := make([]float64, opts.Queries)
	for i := 0; i < opts.Warmup; i++ {
		net.Classify(inputs[i%len(inputs)]) //nolint:errcheck // validated above
	}
	if !opts.KeepGC {
		runtime.GC()
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
	}
	for i := range samples {
		in := inputs[i%len(inputs)]
		start := time.Now()
		net.Classify(in) //nolint:errcheck // validated above
		samples[i] = float64(time.Since(start).Nanoseconds()) / 1e3
	}
	var w metrics.Welford
	for _, v := range samples {
		w.Add(v)
	}
	sort.Float64s(samples)
	return Distribution{
		Queries:  opts.Queries,
		MeanUs:   w.Mean(),
		StdDevUs: w.StdDev(),
		MinUs:    samples[0],
		P50Us:    quantile(samples, 0.50),
		P90Us:    quantile(samples, 0.90),
		P99Us:    quantile(samples, 0.99),
		P999Us:   quantile(samples, 0.999),
		MaxUs:    samples[len(samples)-1],
	}, nil
}

// CVTiming compares serial and parallel k-fold cross-validation
// wall-clock time for the same configuration.
type CVTiming struct {
	Folds        int     `json:"folds"`
	SerialMs     float64 `json:"serial_ms"`
	ParallelMs   float64 `json:"parallel_ms"`
	ParallelJobs int     `json:"parallel_jobs"`
	Speedup      float64 `json:"speedup"`
}

// MeasureCV runs CrossValidate once serially and once with parallelJobs
// workers and reports both wall-clock times. It also verifies the two
// runs agree fold-for-fold, failing loudly if determinism broke.
func MeasureCV(cfg ann.Config, ds *ann.Dataset, k int, opts ann.TrainOptions, parallelJobs int) (CVTiming, error) {
	serialOpts := opts
	serialOpts.Jobs = 1
	start := time.Now()
	serial, err := ann.CrossValidate(cfg, ds, k, serialOpts)
	if err != nil {
		return CVTiming{}, err
	}
	serialDur := time.Since(start)

	parOpts := opts
	parOpts.Jobs = parallelJobs
	start = time.Now()
	par, err := ann.CrossValidate(cfg, ds, k, parOpts)
	if err != nil {
		return CVTiming{}, err
	}
	parDur := time.Since(start)

	for f := range serial.FoldAccuracy {
		if serial.FoldAccuracy[f] != par.FoldAccuracy[f] {
			return CVTiming{}, fmt.Errorf("bench: fold %d accuracy diverged between serial and %d-worker runs", f, parallelJobs)
		}
	}
	return CVTiming{
		Folds:        k,
		SerialMs:     float64(serialDur.Nanoseconds()) / 1e6,
		ParallelMs:   float64(parDur.Nanoseconds()) / 1e6,
		ParallelJobs: parallelJobs,
		Speedup:      float64(serialDur) / float64(parDur),
	}, nil
}

// TrainedBytesIdentical trains one fresh network per worker count and
// reports whether every serialized result is byte-identical — the
// determinism invariant the shard reduction guarantees.
func TrainedBytesIdentical(cfg ann.Config, ds *ann.Dataset, opts ann.TrainOptions, jobs []int) (bool, error) {
	var ref []byte
	for _, j := range jobs {
		net, err := ann.New(cfg)
		if err != nil {
			return false, err
		}
		o := opts
		o.Jobs = j
		if _, err := net.Train(ds, o); err != nil {
			return false, err
		}
		var buf bytes.Buffer
		if err := net.Save(&buf); err != nil {
			return false, err
		}
		if ref == nil {
			ref = buf.Bytes()
		} else if !bytes.Equal(ref, buf.Bytes()) {
			return false, nil
		}
	}
	return true, nil
}
