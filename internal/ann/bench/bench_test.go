package bench

import (
	"math/rand"
	"testing"

	"adamant/internal/ann"
)

func testNet(t *testing.T) (*ann.Network, *ann.Dataset) {
	t.Helper()
	net, err := ann.New(ann.Config{Layers: []int{5, 12, 3}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	ds := &ann.Dataset{}
	for i := 0; i < 40; i++ {
		in := make([]float64, 5)
		for j := range in {
			in[j] = rng.Float64()
		}
		ds.Add(in, ann.OneHot(3, i%3))
	}
	return net, ds
}

func TestMeasureClassify(t *testing.T) {
	net, ds := testNet(t)
	d, err := MeasureClassify(net, ds.Inputs, Options{Queries: 500, Warmup: 50})
	if err != nil {
		t.Fatal(err)
	}
	if d.Queries != 500 {
		t.Errorf("Queries = %d, want 500", d.Queries)
	}
	if d.MinUs < 0 || d.P50Us < d.MinUs || d.P99Us < d.P50Us || d.MaxUs < d.P999Us {
		t.Errorf("distribution not monotone: %+v", d)
	}
	if d.MeanUs <= 0 || d.MaxUs <= 0 {
		t.Errorf("non-positive latencies: %+v", d)
	}
}

func TestMeasureClassifyValidates(t *testing.T) {
	net, _ := testNet(t)
	if _, err := MeasureClassify(net, nil, Options{}); err == nil {
		t.Error("no inputs should error")
	}
	if _, err := MeasureClassify(net, [][]float64{{1}}, Options{}); err == nil {
		t.Error("wrong input width should error")
	}
}

func TestScale(t *testing.T) {
	d := Distribution{MeanUs: 2, P50Us: 1, P99Us: 4, MaxUs: 8}
	s := d.Scale(2.5)
	if s.MeanUs != 5 || s.P50Us != 2.5 || s.P99Us != 10 || s.MaxUs != 20 {
		t.Errorf("Scale(2.5) = %+v", s)
	}
	if d.MeanUs != 2 {
		t.Error("Scale mutated the receiver")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := quantile(sorted, 0.5); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := quantile(sorted, 0.99); got != 10 {
		t.Errorf("p99 = %v, want 10", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestMeasureCVAndDeterminism(t *testing.T) {
	_, ds := testNet(t)
	cfg := ann.Config{Layers: []int{5, 8, 3}, Seed: 4}
	opts := ann.TrainOptions{MaxEpochs: 15, DesiredError: 1e-9}
	timing, err := MeasureCV(cfg, ds, 4, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if timing.Folds != 4 || timing.SerialMs <= 0 || timing.ParallelMs <= 0 || timing.Speedup <= 0 {
		t.Errorf("implausible timing: %+v", timing)
	}
	ok, err := TrainedBytesIdentical(cfg, ds, opts, []int{1, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("trained weights differ across worker counts")
	}
}
