package ann

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func xorDataset() *Dataset {
	var ds Dataset
	ds.Add([]float64{0, 0}, []float64{0})
	ds.Add([]float64{0, 1}, []float64{1})
	ds.Add([]float64{1, 0}, []float64{1})
	ds.Add([]float64{1, 1}, []float64{0})
	return &ds
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Layers: nil},
		{Layers: []int{3}},
		{Layers: []int{3, 0, 2}},
		{Layers: []int{3, -1}},
		{Layers: []int{2, 2}, Steepness: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{Layers: []int{2, 3, 1}}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestRunShapeChecks(t *testing.T) {
	n, err := New(Config{Layers: []int{3, 4, 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run([]float64{1, 2}); err == nil {
		t.Error("wrong input size accepted")
	}
	out, err := n.Run([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("output size %d, want 2", len(out))
	}
	for _, v := range out {
		if v < 0 || v > 1 {
			t.Errorf("sigmoid output %v outside [0,1]", v)
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	a, err := New(Config{Layers: []int{2, 3, 1}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Layers: []int{2, 3, 1}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	oa, _ := a.Run([]float64{0.3, 0.7})
	ob, _ := b.Run([]float64{0.3, 0.7})
	if oa[0] != ob[0] {
		t.Error("same seed should give identical networks")
	}
	c, err := New(Config{Layers: []int{2, 3, 1}, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	oc, _ := c.Run([]float64{0.3, 0.7})
	if oa[0] == oc[0] {
		t.Error("different seeds gave identical output (suspicious)")
	}
}

func TestTrainXORWithRPROP(t *testing.T) {
	n, err := New(Config{Layers: []int{2, 6, 1}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(xorDataset(), TrainOptions{MaxEpochs: 3000, DesiredError: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("XOR did not converge: %+v", res)
	}
	for _, tc := range []struct {
		in   []float64
		want float64
	}{
		{[]float64{0, 0}, 0}, {[]float64{0, 1}, 1},
		{[]float64{1, 0}, 1}, {[]float64{1, 1}, 0},
	} {
		out, err := n.Run(tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out[0]-tc.want) > 0.2 {
			t.Errorf("XOR(%v) = %.3f, want ~%v", tc.in, out[0], tc.want)
		}
	}
}

func TestTrainXORIncremental(t *testing.T) {
	n, err := New(Config{Layers: []int{2, 8, 1}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(xorDataset(), TrainOptions{
		MaxEpochs: 20000, DesiredError: 0.005, Algorithm: Incremental,
		LearningRate: 0.7, Momentum: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("incremental XOR did not converge: %+v", res)
	}
}

func TestTrainLowersStoppingError(t *testing.T) {
	// Lower stopping error must not yield a worse final MSE.
	train := func(desired float64) float64 {
		n, err := New(Config{Layers: []int{2, 6, 1}, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Train(xorDataset(), TrainOptions{MaxEpochs: 3000, DesiredError: desired})
		if err != nil {
			t.Fatal(err)
		}
		return res.MSE
	}
	loose, tight := train(0.01), train(0.0001)
	if tight > loose {
		t.Errorf("tighter stopping error produced higher MSE: %.6f > %.6f", tight, loose)
	}
}

func TestTrainErrors(t *testing.T) {
	n, err := New(Config{Layers: []int{2, 2, 1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(&Dataset{}, TrainOptions{}); err == nil {
		t.Error("empty dataset should error")
	}
	var bad Dataset
	bad.Add([]float64{1}, []float64{1})
	if _, err := n.Train(&bad, TrainOptions{}); err == nil {
		t.Error("shape mismatch should error")
	}
	var badOut Dataset
	badOut.Add([]float64{1, 2}, []float64{1, 2})
	if _, err := n.Train(&badOut, TrainOptions{}); err == nil {
		t.Error("target shape mismatch should error")
	}
	if _, err := n.Train(xorDataset(), TrainOptions{Algorithm: Algorithm(9)}); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestClassifyAndAccuracy(t *testing.T) {
	// Learnable 3-class toy problem: one-hot of argmax of inputs.
	var ds Dataset
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		in := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		ds.Add(in, OneHot(3, argmax(in)))
	}
	n, err := New(Config{Layers: []int{3, 12, 3}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(&ds, TrainOptions{MaxEpochs: 2000, DesiredError: 0.01}); err != nil {
		t.Fatal(err)
	}
	acc, err := n.Accuracy(&ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("training accuracy %.2f, want >= 0.9", acc)
	}
	if _, err := n.Accuracy(&Dataset{}); err == nil {
		t.Error("accuracy on empty dataset should error")
	}
	if _, err := n.Classify([]float64{1}); err == nil {
		t.Error("classify with wrong shape should error")
	}
}

func TestMSE(t *testing.T) {
	n, err := New(Config{Layers: []int{2, 2, 1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mse, err := n.MSE(xorDataset())
	if err != nil {
		t.Fatal(err)
	}
	if mse <= 0 || mse > 1 {
		t.Errorf("untrained MSE = %v", mse)
	}
	if _, err := n.MSE(&Dataset{}); err == nil {
		t.Error("MSE on empty dataset should error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	n, err := New(Config{Layers: []int{4, 8, 3}, Seed: 11, Steepness: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(randomDataset(4, 3, 20, 13), TrainOptions{MaxEpochs: 50}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.1, 0.5, 0.9, 0.2}
	a, _ := n.Run(in)
	aCopy := append([]float64(nil), a...)
	b, _ := m.Run(in)
	for i := range aCopy {
		if math.Abs(aCopy[i]-b[i]) > 1e-12 {
			t.Fatalf("output %d differs after round-trip: %v vs %v", i, aCopy[i], b[i])
		}
	}
	if got := m.Layers(); len(got) != 3 || got[0] != 4 || got[1] != 8 || got[2] != 3 {
		t.Errorf("Layers() after load = %v", got)
	}
}

// Property: save/load round-trips for arbitrary shapes.
func TestSaveLoadProperty(t *testing.T) {
	f := func(seed int64, l1, l2 uint8) bool {
		layers := []int{1 + int(l1%8), 1 + int(l2%16), 2}
		n, err := New(Config{Layers: layers, Seed: seed})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := n.Save(&buf); err != nil {
			return false
		}
		m, err := Load(&buf)
		if err != nil {
			return false
		}
		in := make([]float64, layers[0])
		for i := range in {
			in[i] = 0.5
		}
		a, _ := n.Run(in)
		aCopy := append([]float64(nil), a...)
		b, _ := m.Run(in)
		for i := range aCopy {
			if aCopy[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"",
		"WRONG HEADER\n",
		"ADAMANT-ANN 1\nsteepness x\n",
		"ADAMANT-ANN 1\nsteepness 0.5\nlayers 2\n",
		"ADAMANT-ANN 1\nsteepness 0.5\nlayers 2 x\n",
		"ADAMANT-ANN 1\nsteepness 0.5\nlayers 2 1\nweights 0 1 2\n",   // wrong count
		"ADAMANT-ANN 1\nsteepness 0.5\nlayers 2 1\nweights 0 a b c\n", // bad float
		"ADAMANT-ANN 1\nsteepness 0.5\nlayers 2 1\n",                  // missing weights
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d: bad input accepted", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	n, err := New(Config{Layers: []int{2, 2, 1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/net.ann"
	if err := n.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file should error")
	}
}

func TestRunIsAllocationFree(t *testing.T) {
	n, err := New(Config{Layers: []int{9, 24, 6}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 9)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := n.Run(in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Run allocates %.1f objects per call; queries must be allocation-free", allocs)
	}
}

func TestNumConnections(t *testing.T) {
	n, err := New(Config{Layers: []int{9, 24, 6}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := (9+1)*24 + (24+1)*6
	if got := n.NumConnections(); got != want {
		t.Errorf("NumConnections = %d, want %d", got, want)
	}
}

func TestKFoldPartitionLaws(t *testing.T) {
	folds, err := KFold(103, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("got %d folds", len(folds))
	}
	seen := map[int]bool{}
	for _, fold := range folds {
		if len(fold) < 10 || len(fold) > 11 {
			t.Errorf("fold size %d, want 10 or 11", len(fold))
		}
		for _, idx := range fold {
			if seen[idx] {
				t.Fatalf("index %d in two folds", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 103 {
		t.Errorf("folds cover %d indices, want 103", len(seen))
	}
}

// Property: folds are always a partition.
func TestKFoldProperty(t *testing.T) {
	f := func(nRaw uint8, kRaw uint8, seed int64) bool {
		k := 2 + int(kRaw%9)
		n := k + int(nRaw)
		folds, err := KFold(n, k, seed)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, fold := range folds {
			for _, idx := range fold {
				if idx < 0 || idx >= n || seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKFoldErrors(t *testing.T) {
	if _, err := KFold(10, 1, 0); err == nil {
		t.Error("k=1 should error")
	}
	if _, err := KFold(3, 10, 0); err == nil {
		t.Error("n<k should error")
	}
}

func TestCrossValidate(t *testing.T) {
	// Learnable problem: class = argmax of 2 inputs.
	var ds Dataset
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 80; i++ {
		in := []float64{rng.Float64(), rng.Float64()}
		ds.Add(in, OneHot(2, argmax(in)))
	}
	res, err := CrossValidate(Config{Layers: []int{2, 8, 2}, Seed: 6}, &ds, 5,
		TrainOptions{MaxEpochs: 500, DesiredError: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAccuracy) != 5 {
		t.Fatalf("FoldAccuracy has %d entries", len(res.FoldAccuracy))
	}
	if res.MeanAccuracy < 0.8 {
		t.Errorf("CV accuracy %.2f, want >= 0.8 on a learnable problem", res.MeanAccuracy)
	}
	if res.TrainAccuracy < res.MeanAccuracy-0.05 {
		t.Errorf("train accuracy %.2f should be >= held-out %.2f",
			res.TrainAccuracy, res.MeanAccuracy)
	}
	if _, err := CrossValidate(Config{Layers: []int{2, 2, 2}}, &ds, 1, TrainOptions{}); err == nil {
		t.Error("k=1 should error")
	}
}

func TestOneHot(t *testing.T) {
	v := OneHot(4, 2)
	if len(v) != 4 || v[2] != 1 || v[0] != 0 {
		t.Errorf("OneHot = %v", v)
	}
	if out := OneHot(3, -1); out[0] != 0 || out[1] != 0 || out[2] != 0 {
		t.Error("out-of-range class should give zero vector")
	}
}

func TestSubset(t *testing.T) {
	var ds Dataset
	for i := 0; i < 5; i++ {
		ds.Add([]float64{float64(i)}, []float64{float64(i * 10)})
	}
	s := ds.Subset([]int{4, 0})
	if s.Len() != 2 || s.Inputs[0][0] != 4 || s.Targets[1][0] != 0 {
		t.Errorf("Subset wrong: %+v", s)
	}
}

func randomDataset(in, out, n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	var ds Dataset
	for i := 0; i < n; i++ {
		input := make([]float64, in)
		for j := range input {
			input[j] = rng.Float64()
		}
		ds.Add(input, OneHot(out, rng.Intn(out)))
	}
	return &ds
}

func BenchmarkRun9x24x6(b *testing.B) {
	n, err := New(Config{Layers: []int{9, 24, 6}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	in := make([]float64, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunBatch9x24x6 evaluates a whole 100-sample batch per
// iteration through the tiled kernel; compare per-sample cost against
// BenchmarkRun9x24x6.
func BenchmarkRunBatch9x24x6(b *testing.B) {
	ds := randomDataset(9, 6, 100, 1)
	n, err := New(Config{Layers: []int{9, 24, 6}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	classes := make([]int, ds.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.ClassifyBatch(ds.Inputs, classes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpochRPROP(b *testing.B) {
	ds := randomDataset(9, 6, 100, 1)
	n, err := New(Config{Layers: []int{9, 24, 6}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Train(ds, TrainOptions{MaxEpochs: 1, DesiredError: 1e-12}); err != nil {
			b.Fatal(err)
		}
	}
}
