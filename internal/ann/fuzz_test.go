package ann

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad hardens the network text parser: malformed saved models must
// produce an error, never a panic or an absurd allocation, and anything
// Load accepts must survive a Save/Load round trip.
func FuzzLoad(f *testing.F) {
	net, err := New(Config{Layers: []int{3, 5, 2}, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := net.Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add(valid.String()[:valid.Len()/2])
	f.Add("")
	f.Add("ADAMANT-ANN 1\n")
	f.Add("ADAMANT-ANN 2\nlayers 2 2\n")
	f.Add("ADAMANT-ANN 1\nlayers 99999999 99999999\nsteepness 0.5\n")
	f.Add("ADAMANT-ANN 1\nlayers 2 2\nsteepness NaN\nw 0 0\nw 0 0\nw 0 0\nw 0 0\nw 0 0\nw 0 0\n")
	f.Add("ADAMANT-ANN 1\nlayers 2\nsteepness 0.5\n")
	f.Add("ADAMANT-ANN 1\nlayers -1 2\nsteepness 0.5\n")
	f.Add("ADAMANT-ANN 1\nlayers 2 2\nsteepness 0.5\nw 1e309 0\n")
	f.Add("layers 2 2\nsteepness 0.5\n")
	f.Fuzz(func(t *testing.T, data string) {
		n, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must serialize and re-load cleanly.
		var buf bytes.Buffer
		if err := n.Save(&buf); err != nil {
			t.Fatalf("Save after successful Load: %v", err)
		}
		if _, err := Load(&buf); err != nil {
			t.Fatalf("re-Load of Save output: %v", err)
		}
	})
}
