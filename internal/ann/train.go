package ann

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Algorithm selects the training algorithm.
type Algorithm int

// Training algorithms.
const (
	// RPROP is batch iRPROP- (FANN's default training algorithm).
	RPROP Algorithm = iota
	// Incremental is classic online backpropagation with momentum.
	Incremental
)

// shardSamples is the fixed gradient-shard width: every RPROP epoch sums
// per-sample gradients within ceil(len/shardSamples) shards and combines
// the shard buffers with a fixed-order tree reduction. Because the shard
// structure depends only on the dataset length — never on the worker
// count — the floating-point summation order, and therefore the trained
// weights, are byte-identical at any TrainOptions.Jobs value.
const shardSamples = 16

// TrainOptions tune Train.
type TrainOptions struct {
	// MaxEpochs bounds training. Default 5000.
	MaxEpochs int
	// DesiredError is the MSE stopping error (the paper uses 0.0001 for
	// its best-performing configurations, 0.01 for the coarse ones).
	DesiredError float64
	// Algorithm selects RPROP (default) or Incremental.
	Algorithm Algorithm
	// LearningRate applies to Incremental. Default 0.7 (FANN default).
	LearningRate float64
	// Momentum applies to Incremental. The zero value selects the FANN
	// default 0.1; pass any negative value (canonically -1) for a true
	// zero-momentum run, since 0 cannot mean both "default" and "off".
	Momentum float64
	// Jobs caps the worker goroutines used for batch-gradient (RPROP)
	// epochs; <= 0 means GOMAXPROCS. Trained weights are byte-identical
	// at any Jobs value — see shardSamples. Incremental training is
	// inherently sequential and ignores Jobs.
	Jobs int
}

func (o *TrainOptions) fillDefaults() {
	if o.MaxEpochs <= 0 {
		o.MaxEpochs = 5000
	}
	if o.DesiredError <= 0 {
		o.DesiredError = 1e-4
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.7
	}
	if o.Jobs <= 0 {
		o.Jobs = runtime.GOMAXPROCS(0)
	}
}

// momentum resolves the Momentum sentinel: negative means a true zero-
// momentum run, zero means the FANN default. Resolution happens at use
// rather than in fillDefaults so that filling defaults twice (e.g. a
// caller pre-filling options before Train fills them again) can never
// silently turn an explicit zero-momentum run into the default.
func (o TrainOptions) momentum() float64 {
	switch {
	case o.Momentum < 0:
		return 0
	case o.Momentum == 0:
		return 0.1
	}
	return o.Momentum
}

// TrainResult reports a training run.
type TrainResult struct {
	Epochs    int
	MSE       float64
	Converged bool // reached DesiredError before MaxEpochs
}

// Train fits the network to ds.
func (n *Network) Train(ds *Dataset, opts TrainOptions) (TrainResult, error) {
	opts.fillDefaults()
	if ds.Len() == 0 {
		return TrainResult{}, errors.New("ann: empty dataset")
	}
	for i := range ds.Inputs {
		if len(ds.Inputs[i]) != n.layers[0] || len(ds.Targets[i]) != n.layers[len(n.layers)-1] {
			return TrainResult{}, fmt.Errorf("ann: sample %d shape mismatch", i)
		}
	}
	n.ensureTrainScratch()
	var res TrainResult
	for epoch := 1; epoch <= opts.MaxEpochs; epoch++ {
		var mse float64
		switch opts.Algorithm {
		case RPROP:
			mse = n.epochRPROP(ds, opts.Jobs)
		case Incremental:
			mse = n.epochIncremental(ds, opts.LearningRate, opts.momentum())
		default:
			return res, fmt.Errorf("ann: unknown algorithm %d", opts.Algorithm)
		}
		res.Epochs = epoch
		res.MSE = mse
		if mse <= opts.DesiredError {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// trainScratch is one worker's private forward/backward state.
type trainScratch struct {
	acts   []float64 // laid out like Network.acts
	deltas []float64
}

func (n *Network) newScratch() trainScratch {
	return trainScratch{
		acts:   make([]float64, len(n.acts)),
		deltas: make([]float64, len(n.acts)),
	}
}

func (n *Network) ensureTrainScratch() {
	if n.deltas != nil {
		return
	}
	n.deltas = make([]float64, len(n.acts))
	n.grads = make([]float64, len(n.weights))
	n.prevG = make([]float64, len(n.weights))
	n.stepSz = make([]float64, len(n.weights))
	for i := range n.stepSz {
		n.stepSz[i] = 0.1 // RPROP delta0
	}
}

// ensureShards sizes the per-shard gradient buffers and per-worker
// scratch for a dataset of the given shard count.
func (n *Network) ensureShards(shards, workers int) {
	for len(n.shardGrads) < shards {
		n.shardGrads = append(n.shardGrads, make([]float64, len(n.weights)))
	}
	if len(n.shardSSE) < shards {
		n.shardSSE = make([]float64, shards)
	}
	for len(n.workers) < workers {
		n.workers = append(n.workers, n.newScratch())
	}
}

// backprop runs one forward+backward pass for a single sample,
// accumulating its gradient into grads (laid out like n.weights), and
// returns the sample's summed squared error. sc supplies the activation
// and delta scratch so concurrent shard workers share nothing mutable.
func (n *Network) backprop(sc trainScratch, grads []float64, input, target []float64) float64 {
	out := n.forward(sc.acts, input)
	last := len(n.layers) - 1
	dLast := sc.deltas[n.aoff[last] : n.aoff[last]+n.layers[last]]
	var sse float64
	for o, v := range out {
		err := target[o] - v
		sse += err * err
		// dE/dnet with sigmoid derivative (steepness-scaled).
		dLast[o] = err * 2 * n.steepness * v * (1 - v)
	}
	for l := last - 1; l >= 1; l-- {
		inN, outN := n.layers[l], n.layers[l+1]
		rl := inN + 1
		w := n.weights[n.woff[l]:n.woff[l+1]]
		dl := sc.deltas[n.aoff[l] : n.aoff[l]+inN]
		dl1 := sc.deltas[n.aoff[l+1] : n.aoff[l+1]+outN]
		al := sc.acts[n.aoff[l] : n.aoff[l]+inN]
		// Accumulate over output neurons in ascending order — the same
		// per-element summation order as the historical column-major
		// loop, but streaming each weight row once.
		clear(dl)
		for o, d := range dl1 {
			row := w[o*rl : o*rl+inN]
			for i, wv := range row {
				dl[i] += d * wv
			}
		}
		for i, v := range al {
			dl[i] = dl[i] * 2 * n.steepness * v * (1 - v)
		}
	}
	for l := 0; l < len(n.layers)-1; l++ {
		inN, outN := n.layers[l], n.layers[l+1]
		rl := inN + 1
		g := grads[n.woff[l]:n.woff[l+1]]
		al := sc.acts[n.aoff[l] : n.aoff[l]+inN]
		dl1 := sc.deltas[n.aoff[l+1] : n.aoff[l+1]+outN]
		for o, d := range dl1 {
			row := g[o*rl : o*rl+rl : o*rl+rl]
			for i, v := range al {
				row[i] += d * v
			}
			row[inN] += d // bias
		}
	}
	return sse
}

// epochGradient computes one epoch's summed gradient and SSE over ds.
// Samples are grouped into fixed-width shards; each shard accumulates its
// samples in order into its own buffer (workers claim shards dynamically,
// but a shard's content does not depend on who computed it), and the
// shard buffers are combined by a fixed-order pairwise tree reduction.
// The returned slice is reused across epochs.
func (n *Network) epochGradient(ds *Dataset, jobs int) ([]float64, float64) {
	nSamples := ds.Len()
	shards := (nSamples + shardSamples - 1) / shardSamples
	if shards == 1 {
		clear(n.grads)
		sc := trainScratch{acts: n.acts, deltas: n.deltas}
		var sse float64
		for s := range ds.Inputs {
			sse += n.backprop(sc, n.grads, ds.Inputs[s], ds.Targets[s])
		}
		return n.grads, sse
	}
	workers := min(jobs, shards)
	n.ensureShards(shards, workers)
	runShard := func(sc trainScratch, j int) {
		g := n.shardGrads[j]
		clear(g)
		hi := min((j+1)*shardSamples, nSamples)
		var sse float64
		for s := j * shardSamples; s < hi; s++ {
			sse += n.backprop(sc, g, ds.Inputs[s], ds.Targets[s])
		}
		n.shardSSE[j] = sse
	}
	if workers <= 1 {
		sc := trainScratch{acts: n.acts, deltas: n.deltas}
		for j := 0; j < shards; j++ {
			runShard(sc, j)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			sc := n.workers[w]
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1))
					if j >= shards {
						return
					}
					runShard(sc, j)
				}
			}()
		}
		wg.Wait()
	}
	// Fixed-order pairwise tree reduction into shard 0.
	for stride := 1; stride < shards; stride *= 2 {
		for i := 0; i+stride < shards; i += 2 * stride {
			dst, src := n.shardGrads[i], n.shardGrads[i+stride]
			for k := range dst {
				dst[k] += src[k]
			}
			n.shardSSE[i] += n.shardSSE[i+stride]
		}
	}
	return n.shardGrads[0], n.shardSSE[0]
}

func (n *Network) epochRPROP(ds *Dataset, jobs int) float64 {
	g, sse := n.epochGradient(ds, jobs)
	const (
		etaPlus  = 1.2
		etaMinus = 0.5
		deltaMax = 50.0
		deltaMin = 1e-6
	)
	w, pg, st := n.weights, n.prevG, n.stepSz
	for i := range w {
		sign := g[i] * pg[i]
		switch {
		case sign > 0:
			st[i] = math.Min(st[i]*etaPlus, deltaMax)
			w[i] += sgn(g[i]) * st[i]
			pg[i] = g[i]
		case sign < 0:
			st[i] = math.Max(st[i]*etaMinus, deltaMin)
			pg[i] = 0 // iRPROP-: skip update after a sign flip
		default:
			w[i] += sgn(g[i]) * st[i]
			pg[i] = g[i]
		}
	}
	return sse / float64(ds.Len()*n.layers[len(n.layers)-1])
}

func (n *Network) epochIncremental(ds *Dataset, rate, momentum float64) float64 {
	sc := trainScratch{acts: n.acts, deltas: n.deltas}
	var sse float64
	for s := range ds.Inputs {
		clear(n.grads)
		sse += n.backprop(sc, n.grads, ds.Inputs[s], ds.Targets[s])
		w, g, pg := n.weights, n.grads, n.prevG
		for i := range w {
			step := rate*g[i] + momentum*pg[i]
			w[i] += step
			pg[i] = step
		}
	}
	return sse / float64(ds.Len()*n.layers[len(n.layers)-1])
}

func sgn(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}
