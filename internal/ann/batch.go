package ann

import (
	"errors"
	"fmt"
)

// batchTile bounds how many samples the batch kernels stage through the
// activation slab at once: large enough to amortize each weight row over
// many samples, small enough that the slab stays cache-resident.
const batchTile = 32

// runTiled runs the forward pass for every input in tiles of up to
// batchTile samples and invokes emit with each sample's index and output
// slice (valid only during the callback). Inputs must be pre-validated.
// Staging a whole tile through one activation slab amortizes validation,
// slice setup, and per-call overhead across samples while keeping the
// weight matrix L1-resident for the whole tile; every dot product still
// performs the same additions in the same order as Run, so outputs are
// bit-identical to per-sample calls.
func (n *Network) runTiled(inputs [][]float64, emit func(sample int, out []float64)) {
	tile := min(batchTile, len(inputs))
	need := tile * len(n.acts)
	if cap(n.batch) < need {
		n.batch = make([]float64, need)
	}
	b := n.batch[:need]
	last := len(n.layers) - 1
	for start := 0; start < len(inputs); start += tile {
		cnt := min(tile, len(inputs)-start)
		in0 := b[tile*n.aoff[0]:]
		inN0 := n.layers[0]
		for s := 0; s < cnt; s++ {
			copy(in0[s*inN0:(s+1)*inN0], inputs[start+s])
		}
		for l := 0; l < last; l++ {
			inN, outN := n.layers[l], n.layers[l+1]
			rl := inN + 1
			w := n.weights[n.woff[l]:n.woff[l+1]]
			inB := b[tile*n.aoff[l] : tile*n.aoff[l]+cnt*inN]
			outB := b[tile*n.aoff[l+1] : tile*n.aoff[l+1]+cnt*outN]
			for s := 0; s < cnt; s++ {
				inRow := inB[s*inN : s*inN+inN : s*inN+inN]
				outRow := outB[s*outN : s*outN+outN : s*outN+outN]
				for o := range outRow {
					row := w[o*rl : o*rl+rl : o*rl+rl]
					sum := row[inN] // bias
					for i, v := range inRow {
						sum += v * row[i]
					}
					outRow[o] = n.sigmoid(sum)
				}
			}
		}
		outN := n.layers[last]
		outB := b[tile*n.aoff[last]:]
		for s := 0; s < cnt; s++ {
			emit(start+s, outB[s*outN:(s+1)*outN])
		}
	}
}

// checkBatch validates a batch of inputs (and, when targets is non-nil,
// their matching target vectors).
func (n *Network) checkBatch(inputs, targets [][]float64) error {
	if len(inputs) == 0 {
		return errors.New("ann: empty dataset")
	}
	if targets != nil && len(targets) != len(inputs) {
		return fmt.Errorf("ann: %d inputs but %d targets", len(inputs), len(targets))
	}
	outN := n.layers[len(n.layers)-1]
	for i, in := range inputs {
		if len(in) != n.layers[0] {
			return fmt.Errorf("ann: input %d size %d, want %d", i, len(in), n.layers[0])
		}
		if targets != nil && len(targets[i]) != outN {
			return fmt.Errorf("ann: target %d size %d, want %d", i, len(targets[i]), outN)
		}
	}
	return nil
}

// RunBatch computes the forward pass for every input and returns one
// output vector per input. Unlike Run, the results do not alias network
// scratch: all rows share one backing array allocated by the call.
// Outputs are bit-identical to calling Run on each input.
func (n *Network) RunBatch(inputs [][]float64) ([][]float64, error) {
	if err := n.checkBatch(inputs, nil); err != nil {
		return nil, err
	}
	outN := n.layers[len(n.layers)-1]
	slab := make([]float64, len(inputs)*outN)
	outs := make([][]float64, len(inputs))
	for i := range outs {
		outs[i] = slab[i*outN : (i+1)*outN : (i+1)*outN]
	}
	n.runTiled(inputs, func(s int, out []float64) {
		copy(outs[s], out)
	})
	return outs, nil
}

// ClassifyBatch writes the argmax class of every input into classes
// (whose length must match) without allocating per sample.
func (n *Network) ClassifyBatch(inputs [][]float64, classes []int) error {
	if err := n.checkBatch(inputs, nil); err != nil {
		return err
	}
	if len(classes) != len(inputs) {
		return fmt.Errorf("ann: %d inputs but %d class slots", len(inputs), len(classes))
	}
	n.runTiled(inputs, func(s int, out []float64) {
		classes[s] = argmax(out)
	})
	return nil
}

// AccuracyBatch returns the fraction of inputs whose predicted class
// matches the target argmax, using the tiled batch kernel.
func (n *Network) AccuracyBatch(inputs, targets [][]float64) (float64, error) {
	if targets == nil {
		return 0, errors.New("ann: nil targets")
	}
	if err := n.checkBatch(inputs, targets); err != nil {
		return 0, err
	}
	correct := 0
	n.runTiled(inputs, func(s int, out []float64) {
		if argmax(out) == argmax(targets[s]) {
			correct++
		}
	})
	return float64(correct) / float64(len(inputs)), nil
}

// Accuracy returns the fraction of samples whose Classify matches the
// target argmax.
func (n *Network) Accuracy(ds *Dataset) (float64, error) {
	return n.AccuracyBatch(ds.Inputs, ds.Targets)
}

// MSE returns the mean squared error over ds.
func (n *Network) MSE(ds *Dataset) (float64, error) {
	if err := n.checkBatch(ds.Inputs, ds.Targets); err != nil {
		return 0, err
	}
	var sse float64
	n.runTiled(ds.Inputs, func(s int, out []float64) {
		for o, v := range out {
			e := ds.Targets[s][o] - v
			sse += e * e
		}
	})
	return sse / float64(ds.Len()*n.layers[len(n.layers)-1]), nil
}
