package ann_test

import (
	"fmt"

	"adamant/internal/ann"
)

func Example() {
	// Train a tiny network on XOR and query it — the same train/query
	// cycle ADAMANT uses for protocol selection.
	net, err := ann.New(ann.Config{Layers: []int{2, 6, 1}, Seed: 7})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var ds ann.Dataset
	ds.Add([]float64{0, 0}, []float64{0})
	ds.Add([]float64{0, 1}, []float64{1})
	ds.Add([]float64{1, 0}, []float64{1})
	ds.Add([]float64{1, 1}, []float64{0})
	res, err := net.Train(&ds, ann.TrainOptions{MaxEpochs: 3000, DesiredError: 0.001})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("converged:", res.Converged)
	out, err := net.Run([]float64{1, 0})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("XOR(1,0) rounds to:", out[0] > 0.5)
	// Output:
	// converged: true
	// XOR(1,0) rounds to: true
}

func ExampleOneHot() {
	fmt.Println(ann.OneHot(4, 2))
	// Output: [0 0 1 0]
}
