// Package wire defines the binary on-the-wire packet formats shared by every
// ANT transport protocol (Ricochet, NAKcast, best-effort multicast, and the
// ACK-based reliable baseline).
//
// A packet is a fixed header followed by a type-specific payload and a CRC32
// trailer. All integers are big-endian. The format is versioned so that
// incompatible changes can be detected rather than silently misparsed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// NodeID identifies a node (a data writer or data reader host) inside one
// dissemination group. IDs are assigned by the group configuration and are
// dense small integers.
type NodeID uint16

// StreamID identifies a logical data stream (a DDS topic instance) so that
// several topics can share one endpoint.
type StreamID uint32

// ControlStream is the reserved stream ID used by control-plane traffic
// (membership heartbeats, joins, leaves). Data streams must use IDs >= 1.
const ControlStream StreamID = 0

// Type enumerates the packet kinds used by the transport protocols.
type Type uint8

// Packet type values. They start at 1 so that the zero value is invalid and
// an all-zero buffer cannot decode successfully.
const (
	// TypeData carries one application sample published by a data writer.
	TypeData Type = iota + 1
	// TypeRepair carries a Ricochet lateral-error-correction repair: the
	// XOR of a set of data packets, sent receiver-to-receiver.
	TypeRepair
	// TypeNak is a NAKcast negative acknowledgment listing missing
	// sequence ranges, sent receiver-to-sender.
	TypeNak
	// TypeRetrans carries a retransmitted data sample in response to a NAK.
	// It preserves the original send timestamp of the sample.
	TypeRetrans
	// TypeAck is a cumulative acknowledgment used by the ACK-based
	// reliable baseline protocol.
	TypeAck
	// TypeHeartbeat announces liveness and the sender's highest sequence
	// number; used for gap detection at stream tail and failure detection.
	TypeHeartbeat
	// TypeJoin announces a node joining a group.
	TypeJoin
	// TypeLeave announces a graceful departure from a group.
	TypeLeave
	// TypeRebind announces the binding's epoch chain: every transport
	// switch performed on the stream, as (epoch, cut, spec) records.
	// Receivers use it to instantiate protocol generations they missed and
	// to learn where each generation's sequence space ends.
	TypeRebind
	// TypeSymbol carries one Fountcast repair symbol: a seeded random
	// GF(2) linear combination of a source block's data packets. The body
	// names the block, the symbol index, and the coefficient seed, so any
	// receiver can regenerate the combination mask deterministically.
	TypeSymbol

	maxType = TypeSymbol
)

var typeNames = [...]string{
	TypeData:      "DATA",
	TypeRepair:    "REPAIR",
	TypeNak:       "NAK",
	TypeRetrans:   "RETRANS",
	TypeAck:       "ACK",
	TypeHeartbeat: "HEARTBEAT",
	TypeJoin:      "JOIN",
	TypeLeave:     "LEAVE",
	TypeRebind:    "REBIND",
	TypeSymbol:    "SYMBOL",
}

// String implements fmt.Stringer.
func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Valid reports whether t is a known packet type.
func (t Type) Valid() bool { return t >= TypeData && t <= maxType }

// Flag bits carried in the packet header.
const (
	// FlagRecovered marks a sample that was reconstructed from a repair
	// rather than received directly. Set only on locally synthesized
	// packets, never on the wire, but reserved here so headers round-trip.
	FlagRecovered uint8 = 1 << iota
	// FlagEOS marks the final sample of a stream, letting receivers
	// terminate tail-loss recovery deterministically.
	FlagEOS
)

// Version is the current wire protocol version. Version 2 added the
// 16-bit epoch field (binding generation) to the header.
const Version = 2

const (
	magic      = 0xAD
	headerSize = 1 + 1 + 1 + 1 + 2 + 4 + 8 + 8 + 2 + 2 // magic..payload length
	crcSize    = 4

	// MaxPayload bounds the payload of a single packet. Experiments use
	// 12-byte samples; the bound exists to keep buffer allocation sane.
	MaxPayload = 1 << 16

	// Overhead is the fixed per-packet framing cost in bytes (header plus
	// CRC trailer). The network emulator adds this to payload sizes when
	// modeling serialization delay and bandwidth usage.
	Overhead = headerSize + crcSize
)

// Packet is the decoded form of one wire packet.
//
// SentAt is the origination timestamp of the data carried by the packet. For
// TypeData it is stamped by the writer at publish time; for TypeRetrans it
// preserves the original publish time so end-to-end latency accounting is
// correct for recovered samples.
//
// Epoch is the binding generation the packet belongs to. A stream that has
// never been rebound uses epoch 0; every live transport swap increments it.
// Receivers route packets to the protocol instance of the matching epoch.
type Packet struct {
	Type    Type
	Flags   uint8
	Src     NodeID
	Stream  StreamID
	Seq     uint64
	Epoch   uint16
	SentAt  time.Time
	Payload []byte
}

// Errors returned by Decode.
var (
	ErrTooShort    = errors.New("wire: packet too short")
	ErrBadMagic    = errors.New("wire: bad magic byte")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadType     = errors.New("wire: unknown packet type")
	ErrBadChecksum = errors.New("wire: checksum mismatch")
	ErrTruncated   = errors.New("wire: truncated payload")
	ErrOversize    = errors.New("wire: payload exceeds MaxPayload")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodedSize returns the number of bytes Encode will produce for p.
func (p *Packet) EncodedSize() int { return headerSize + len(p.Payload) + crcSize }

// Encode appends the wire encoding of p to dst and returns the extended
// slice. It returns an error if the payload exceeds MaxPayload.
func (p *Packet) Encode(dst []byte) ([]byte, error) {
	if len(p.Payload) > MaxPayload {
		return dst, fmt.Errorf("%w: %d bytes", ErrOversize, len(p.Payload))
	}
	if !p.Type.Valid() {
		return dst, fmt.Errorf("%w: %d", ErrBadType, uint8(p.Type))
	}
	start := len(dst)
	var hdr [headerSize]byte
	hdr[0] = magic
	hdr[1] = Version
	hdr[2] = uint8(p.Type)
	hdr[3] = p.Flags
	binary.BigEndian.PutUint16(hdr[4:6], uint16(p.Src))
	binary.BigEndian.PutUint32(hdr[6:10], uint32(p.Stream))
	binary.BigEndian.PutUint64(hdr[10:18], p.Seq)
	binary.BigEndian.PutUint64(hdr[18:26], uint64(p.SentAt.UnixNano()))
	binary.BigEndian.PutUint16(hdr[26:28], p.Epoch)
	binary.BigEndian.PutUint16(hdr[28:30], uint16(len(p.Payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, p.Payload...)
	sum := crc32.Checksum(dst[start:], crcTable)
	var tail [crcSize]byte
	binary.BigEndian.PutUint32(tail[:], sum)
	dst = append(dst, tail[:]...)
	return dst, nil
}

// Marshal is a convenience wrapper around Encode that allocates a fresh
// buffer of exactly the right size.
func (p *Packet) Marshal() ([]byte, error) {
	buf := make([]byte, 0, p.EncodedSize())
	return p.Encode(buf)
}

// Decode parses one packet from buf. The returned packet's Payload aliases
// buf; callers that retain the packet beyond the lifetime of buf must copy.
func Decode(buf []byte) (*Packet, error) {
	if len(buf) < headerSize+crcSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooShort, len(buf))
	}
	if buf[0] != magic {
		return nil, ErrBadMagic
	}
	if buf[1] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, buf[1])
	}
	t := Type(buf[2])
	if !t.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrBadType, buf[2])
	}
	plen := int(binary.BigEndian.Uint16(buf[28:30]))
	total := headerSize + plen + crcSize
	if len(buf) < total {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTruncated, len(buf), total)
	}
	body := buf[:headerSize+plen]
	want := binary.BigEndian.Uint32(buf[headerSize+plen : total])
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("%w: got %08x want %08x", ErrBadChecksum, got, want)
	}
	p := &Packet{
		Type:   t,
		Flags:  buf[3],
		Src:    NodeID(binary.BigEndian.Uint16(buf[4:6])),
		Stream: StreamID(binary.BigEndian.Uint32(buf[6:10])),
		Seq:    binary.BigEndian.Uint64(buf[10:18]),
		Epoch:  binary.BigEndian.Uint16(buf[26:28]),
		SentAt: time.Unix(0, int64(binary.BigEndian.Uint64(buf[18:26]))),
	}
	if plen > 0 {
		p.Payload = buf[headerSize : headerSize+plen]
	}
	return p, nil
}

// inlinePayload is the payload size up to which Clone packs header and
// payload into one allocation. Experiment samples are 12 bytes and control
// bodies are small, so nearly every simulated hop takes this path.
const inlinePayload = 64

// packetBuf bundles a Packet with an inline payload buffer so small clones
// cost a single allocation instead of two.
type packetBuf struct {
	p   Packet
	buf [inlinePayload]byte
}

// Clone returns a deep copy of p, including the payload. Use it when a
// decoded packet must outlive the receive buffer it aliases.
func (p *Packet) Clone() *Packet {
	if n := len(p.Payload); n > 0 && n <= inlinePayload {
		c := &packetBuf{p: *p}
		copy(c.buf[:n], p.Payload)
		c.p.Payload = c.buf[:n:n]
		return &c.p
	}
	c := *p
	if p.Payload != nil {
		c.Payload = append([]byte(nil), p.Payload...)
	}
	return &c
}
