package wire

import (
	"testing"
	"time"
)

// FuzzDecode asserts the codec never panics on arbitrary input, and that
// anything it accepts re-encodes to an equivalent packet.
func FuzzDecode(f *testing.F) {
	good, err := (&Packet{
		Type: TypeData, Src: 3, Stream: 9, Seq: 77,
		SentAt: time.Unix(0, 12345), Payload: []byte("seed"),
	}).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{magic})
	f.Add(good[:len(good)-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		back, err := p.Marshal()
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v", err)
		}
		p2, err := Decode(back)
		if err != nil {
			t.Fatalf("re-encoded packet failed to decode: %v", err)
		}
		if p2.Type != p.Type || p2.Seq != p.Seq || p2.Src != p.Src || p2.Stream != p.Stream {
			t.Fatal("round-trip changed header fields")
		}
	})
}

// FuzzDecodeRepair asserts the repair body parser is total.
func FuzzDecodeRepair(f *testing.F) {
	rep := &Repair{Seqs: []uint64{1, 2, 3}, XORSentAt: 9, XORLen: 4, XORPayload: []byte{1, 2, 3, 4}}
	seed, err := rep.Encode(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRepair(data)
		if err != nil {
			return
		}
		if len(r.Seqs) == 0 || len(r.Seqs) > maxRepairSeqs {
			t.Fatalf("accepted repair with %d seqs", len(r.Seqs))
		}
	})
}

// FuzzDecodeSymbol asserts the Fountcast symbol body parser is total and
// only accepts bodies the encoder could have produced.
func FuzzDecodeSymbol(f *testing.F) {
	sb := &SymbolBody{Block: 7, Count: 8, SymbolID: 2, Seed: 99, XORSentAt: 5, XORLen: 12, XORPayload: []byte{1, 2, 3}}
	seed, err := sb.Encode(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:symbolFixedSize])
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSymbol(data)
		if err != nil {
			return
		}
		if s.Count == 0 || s.Count > MaxSymbolCount {
			t.Fatalf("accepted symbol with count %d", s.Count)
		}
		if s.SymbolID == 0 {
			t.Fatal("accepted symbol id 0")
		}
		back, err := s.Encode(nil)
		if err != nil {
			t.Fatalf("accepted symbol failed to re-encode: %v", err)
		}
		s2, err := DecodeSymbol(back)
		if err != nil {
			t.Fatalf("re-encoded symbol failed to decode: %v", err)
		}
		if s2.Block != s.Block || s2.Count != s.Count || s2.SymbolID != s.SymbolID || s2.Seed != s.Seed {
			t.Fatal("round-trip changed symbol fields")
		}
	})
}

// FuzzDecodeNak asserts the NAK body parser is total and never returns
// inverted ranges.
func FuzzDecodeNak(f *testing.F) {
	nb := &NakBody{Ranges: []SeqRange{{From: 1, To: 5}}}
	seed, err := nb.Encode(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeNak(data)
		if err != nil {
			return
		}
		for _, r := range n.Ranges {
			if r.To < r.From {
				t.Fatalf("accepted inverted range %+v", r)
			}
		}
	})
}
