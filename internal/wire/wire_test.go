package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func samplePacket() *Packet {
	return &Packet{
		Type:    TypeData,
		Flags:   FlagEOS,
		Src:     7,
		Stream:  42,
		Seq:     123456789,
		Epoch:   3,
		SentAt:  time.Unix(0, 1_600_000_000_123_456_789),
		Payload: []byte("hello, adamant"),
	}
}

func TestPacketRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		pkt  *Packet
	}{
		{"data with payload", samplePacket()},
		{"empty payload", &Packet{Type: TypeHeartbeat, Src: 1, Stream: 9, Seq: 5, SentAt: time.Unix(12, 34)}},
		{"zero seq", &Packet{Type: TypeNak, Src: 0, Stream: 0, Seq: 0, SentAt: time.Unix(0, 0), Payload: []byte{1}}},
		{"max node id", &Packet{Type: TypeLeave, Src: 65535, Stream: 1, Seq: 1, SentAt: time.Unix(0, 99)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buf, err := tt.pkt.Marshal()
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			if len(buf) != tt.pkt.EncodedSize() {
				t.Errorf("EncodedSize = %d, Marshal produced %d", tt.pkt.EncodedSize(), len(buf))
			}
			got, err := Decode(buf)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got.Type != tt.pkt.Type || got.Flags != tt.pkt.Flags || got.Src != tt.pkt.Src ||
				got.Stream != tt.pkt.Stream || got.Seq != tt.pkt.Seq || got.Epoch != tt.pkt.Epoch {
				t.Errorf("header mismatch: got %+v want %+v", got, tt.pkt)
			}
			if !got.SentAt.Equal(tt.pkt.SentAt) {
				t.Errorf("SentAt = %v, want %v", got.SentAt, tt.pkt.SentAt)
			}
			if !bytes.Equal(got.Payload, tt.pkt.Payload) {
				t.Errorf("payload = %q, want %q", got.Payload, tt.pkt.Payload)
			}
		})
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	f := func(flags uint8, src uint16, stream uint32, seq uint64, epoch uint16, nanos int64, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		p := &Packet{
			Type:    TypeData,
			Flags:   flags,
			Src:     NodeID(src),
			Stream:  StreamID(stream),
			Seq:     seq,
			Epoch:   epoch,
			SentAt:  time.Unix(0, nanos),
			Payload: payload,
		}
		buf, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return got.Flags == flags && got.Src == NodeID(src) && got.Stream == StreamID(stream) &&
			got.Seq == seq && got.Epoch == epoch && got.SentAt.UnixNano() == nanos &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	good, err := samplePacket().Marshal()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("too short", func(t *testing.T) {
		if _, err := Decode(good[:10]); !errors.Is(err, ErrTooShort) {
			t.Errorf("err = %v, want ErrTooShort", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 0x00
		if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[1] = 99
		if _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
			t.Errorf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("bad type", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[2] = 200
		if _, err := Decode(bad); !errors.Is(err, ErrBadType) {
			t.Errorf("err = %v, want ErrBadType", err)
		}
	})
	t.Run("zero type", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[2] = 0
		if _, err := Decode(bad); !errors.Is(err, ErrBadType) {
			t.Errorf("err = %v, want ErrBadType", err)
		}
	})
	t.Run("corrupt payload", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-6] ^= 0xFF
		if _, err := Decode(bad); !errors.Is(err, ErrBadChecksum) {
			t.Errorf("err = %v, want ErrBadChecksum", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		if _, err := Decode(good[:len(good)-5]); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
	})
}

func TestEncodeRejectsOversize(t *testing.T) {
	p := &Packet{Type: TypeData, Payload: make([]byte, MaxPayload+1)}
	if _, err := p.Marshal(); !errors.Is(err, ErrOversize) {
		t.Errorf("err = %v, want ErrOversize", err)
	}
}

func TestEncodeRejectsInvalidType(t *testing.T) {
	p := &Packet{Type: 0}
	if _, err := p.Marshal(); !errors.Is(err, ErrBadType) {
		t.Errorf("err = %v, want ErrBadType", err)
	}
}

func TestTypeString(t *testing.T) {
	if got := TypeData.String(); got != "DATA" {
		t.Errorf("TypeData.String() = %q", got)
	}
	if got := Type(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown type string = %q", got)
	}
}

func TestClone(t *testing.T) {
	p := samplePacket()
	c := p.Clone()
	c.Payload[0] = 'X'
	if p.Payload[0] == 'X' {
		t.Error("Clone shares payload storage with original")
	}
}

func TestDecodeAliasesBuffer(t *testing.T) {
	buf, err := samplePacket().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[headerSize] = 'Z'
	if p.Payload[0] != 'Z' {
		t.Error("Decode should alias the input buffer (documented contract)")
	}
}

func TestRepairReconstructSingleLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	group := make([]*Packet, 4)
	for i := range group {
		payload := make([]byte, 12)
		rng.Read(payload)
		group[i] = &Packet{
			Type:    TypeData,
			Seq:     uint64(100 + i),
			SentAt:  time.Unix(0, int64(1e9+i*1000)),
			Payload: payload,
		}
	}
	for missing := 0; missing < len(group); missing++ {
		var rep Repair
		for _, p := range group {
			rep.AddPacket(p)
		}
		var held []*Packet
		for i, p := range group {
			if i != missing {
				held = append(held, p)
			}
		}
		sentAt, payload, err := rep.Reconstruct(held)
		if err != nil {
			t.Fatalf("Reconstruct(missing=%d): %v", missing, err)
		}
		want := group[missing]
		if !sentAt.Equal(want.SentAt) {
			t.Errorf("missing=%d: sentAt = %v, want %v", missing, sentAt, want.SentAt)
		}
		if !bytes.Equal(payload, want.Payload) {
			t.Errorf("missing=%d: payload = %x, want %x", missing, payload, want.Payload)
		}
	}
}

func TestRepairReconstructVariableLengths(t *testing.T) {
	group := []*Packet{
		{Type: TypeData, Seq: 1, SentAt: time.Unix(0, 111), Payload: []byte("a")},
		{Type: TypeData, Seq: 2, SentAt: time.Unix(0, 222), Payload: []byte("longer payload")},
		{Type: TypeData, Seq: 3, SentAt: time.Unix(0, 333), Payload: []byte("mid")},
	}
	var rep Repair
	for _, p := range group {
		rep.AddPacket(p)
	}
	sentAt, payload, err := rep.Reconstruct([]*Packet{group[0], group[2]})
	if err != nil {
		t.Fatal(err)
	}
	if !sentAt.Equal(group[1].SentAt) || !bytes.Equal(payload, group[1].Payload) {
		t.Errorf("got (%v, %q), want (%v, %q)", sentAt, payload, group[1].SentAt, group[1].Payload)
	}
}

func TestRepairReconstructWrongSiblingCount(t *testing.T) {
	var rep Repair
	rep.AddPacket(&Packet{Seq: 1, SentAt: time.Unix(0, 1), Payload: []byte("x")})
	rep.AddPacket(&Packet{Seq: 2, SentAt: time.Unix(0, 2), Payload: []byte("y")})
	if _, _, err := rep.Reconstruct(nil); !errors.Is(err, ErrBodyInvalid) {
		t.Errorf("err = %v, want ErrBodyInvalid", err)
	}
}

// Property: for any R in [2,8] and any single missing index, XOR repair
// reconstructs the missing packet exactly.
func TestRepairReconstructProperty(t *testing.T) {
	f := func(seed int64, rRaw uint8, missRaw uint8) bool {
		r := 2 + int(rRaw%7)
		missing := int(missRaw) % r
		rng := rand.New(rand.NewSource(seed))
		group := make([]*Packet, r)
		for i := range group {
			payload := make([]byte, 1+rng.Intn(32))
			rng.Read(payload)
			group[i] = &Packet{
				Seq:     rng.Uint64(),
				SentAt:  time.Unix(0, rng.Int63()),
				Payload: payload,
			}
		}
		var rep Repair
		for _, p := range group {
			rep.AddPacket(p)
		}
		var held []*Packet
		for i, p := range group {
			if i != missing {
				held = append(held, p)
			}
		}
		sentAt, payload, err := rep.Reconstruct(held)
		if err != nil {
			return false
		}
		return sentAt.Equal(group[missing].SentAt) && bytes.Equal(payload, group[missing].Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRepairBodyRoundTrip(t *testing.T) {
	rep := &Repair{
		Seqs:       []uint64{10, 11, 12, 13},
		XORSentAt:  0xDEADBEEF,
		XORLen:     12,
		XORPayload: []byte{1, 2, 3, 4, 5},
	}
	buf, err := rep.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRepair(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Seqs) != 4 || got.Seqs[0] != 10 || got.Seqs[3] != 13 {
		t.Errorf("seqs = %v", got.Seqs)
	}
	if got.XORSentAt != rep.XORSentAt || got.XORLen != rep.XORLen || !bytes.Equal(got.XORPayload, rep.XORPayload) {
		t.Errorf("body mismatch: %+v vs %+v", got, rep)
	}
}

func TestRepairBodyErrors(t *testing.T) {
	if _, err := (&Repair{}).Encode(nil); !errors.Is(err, ErrBodyInvalid) {
		t.Errorf("empty repair encode err = %v", err)
	}
	if _, err := DecodeRepair(nil); !errors.Is(err, ErrBodyTruncated) {
		t.Errorf("nil decode err = %v", err)
	}
	if _, err := DecodeRepair([]byte{0}); !errors.Is(err, ErrBodyInvalid) {
		t.Errorf("zero-count decode err = %v", err)
	}
	if _, err := DecodeRepair([]byte{4, 1, 2}); !errors.Is(err, ErrBodyTruncated) {
		t.Errorf("short decode err = %v", err)
	}
}

func TestSymbolBodyRoundTrip(t *testing.T) {
	sb := &SymbolBody{
		Block:      42,
		Count:      8,
		SymbolID:   3,
		Seed:       0xFEEDFACECAFEBEEF,
		XORSentAt:  0xDEADBEEF,
		XORLen:     15, // XOR of lengths, may exceed every covered length
		XORPayload: []byte{9, 8, 7, 6, 5},
	}
	buf, err := sb.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSymbol(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Block != sb.Block || got.Count != sb.Count || got.SymbolID != sb.SymbolID ||
		got.Seed != sb.Seed || got.XORSentAt != sb.XORSentAt || got.XORLen != sb.XORLen ||
		!bytes.Equal(got.XORPayload, sb.XORPayload) {
		t.Errorf("body mismatch: %+v vs %+v", got, sb)
	}
}

func TestSymbolBodyBounds(t *testing.T) {
	// Count = 1 (single-packet tail block) and Count = MaxSymbolCount are
	// both legal; empty payload is legal (all-empty source packets).
	for _, count := range []uint16{1, MaxSymbolCount} {
		sb := &SymbolBody{Block: 1, Count: count, SymbolID: 1}
		buf, err := sb.Encode(nil)
		if err != nil {
			t.Fatalf("count=%d: %v", count, err)
		}
		got, err := DecodeSymbol(buf)
		if err != nil {
			t.Fatalf("count=%d decode: %v", count, err)
		}
		if got.Count != count || len(got.XORPayload) != 0 {
			t.Errorf("count=%d: got %+v", count, got)
		}
	}
}

func TestSymbolBodyErrors(t *testing.T) {
	if _, err := (&SymbolBody{Count: 0, SymbolID: 1}).Encode(nil); !errors.Is(err, ErrBodyInvalid) {
		t.Errorf("zero count encode err = %v", err)
	}
	if _, err := (&SymbolBody{Count: MaxSymbolCount + 1, SymbolID: 1}).Encode(nil); !errors.Is(err, ErrBodyInvalid) {
		t.Errorf("oversize count encode err = %v", err)
	}
	if _, err := (&SymbolBody{Count: 4, SymbolID: 0}).Encode(nil); !errors.Is(err, ErrBodyInvalid) {
		t.Errorf("zero symbol id encode err = %v", err)
	}
	if _, err := DecodeSymbol(nil); !errors.Is(err, ErrBodyTruncated) {
		t.Errorf("nil decode err = %v", err)
	}
	good, err := (&SymbolBody{Block: 1, Count: 4, SymbolID: 1, XORPayload: []byte{1, 2, 3}}).Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSymbol(good[:len(good)-1]); !errors.Is(err, ErrBodyTruncated) {
		t.Errorf("short payload decode err = %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[9] = 0 // Count -> 0
	if _, err := DecodeSymbol(bad); !errors.Is(err, ErrBodyInvalid) {
		t.Errorf("zero count decode err = %v", err)
	}
}

func TestNakBodyRoundTrip(t *testing.T) {
	nb := &NakBody{Ranges: []SeqRange{{From: 5, To: 9}, {From: 20, To: 20}}}
	buf, err := nb.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNak(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ranges) != 2 || got.Ranges[0] != (SeqRange{5, 9}) || got.Ranges[1] != (SeqRange{20, 20}) {
		t.Errorf("ranges = %v", got.Ranges)
	}
}

func TestNakBodyErrors(t *testing.T) {
	if _, err := (&NakBody{}).Encode(nil); !errors.Is(err, ErrBodyInvalid) {
		t.Errorf("empty NAK encode err = %v", err)
	}
	inverted := &NakBody{Ranges: []SeqRange{{From: 9, To: 5}}}
	if _, err := inverted.Encode(nil); !errors.Is(err, ErrBodyInvalid) {
		t.Errorf("inverted range encode err = %v", err)
	}
	if _, err := DecodeNak([]byte{1, 0}); !errors.Is(err, ErrBodyTruncated) {
		t.Errorf("short NAK decode err = %v", err)
	}
}

func TestSeqRangeCount(t *testing.T) {
	tests := []struct {
		r    SeqRange
		want uint64
	}{
		{SeqRange{5, 9}, 5},
		{SeqRange{7, 7}, 1},
		{SeqRange{9, 5}, 0},
	}
	for _, tt := range tests {
		if got := tt.r.Count(); got != tt.want {
			t.Errorf("%+v.Count() = %d, want %d", tt.r, got, tt.want)
		}
	}
}

func TestAckBodyRoundTrip(t *testing.T) {
	a := &AckBody{Cumulative: 99, Bitmap: 0b1011}
	buf, err := a.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAck(buf)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Errorf("got %+v, want %+v", got, a)
	}
	if _, err := DecodeAck(buf[:8]); !errors.Is(err, ErrBodyTruncated) {
		t.Errorf("short ACK decode err = %v", err)
	}
}

func TestHeartbeatBodyRoundTrip(t *testing.T) {
	h := &HeartbeatBody{HighSeq: 12345, Incarnation: 6}
	buf, err := h.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHeartbeat(buf)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *h {
		t.Errorf("got %+v, want %+v", got, h)
	}
	if _, err := DecodeHeartbeat(buf[:4]); !errors.Is(err, ErrBodyTruncated) {
		t.Errorf("short heartbeat decode err = %v", err)
	}
}

func TestRebindBodyRoundTrip(t *testing.T) {
	rb := &RebindBody{Records: []RebindRecord{
		{Epoch: 1, Cut: 150, Spec: "nakcast(timeout=10ms)"},
		{Epoch: 2, Cut: 311, Spec: "ricochet(c=3,r=8)"},
	}}
	buf, err := rb.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRebind(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 2 || got.Records[0] != rb.Records[0] || got.Records[1] != rb.Records[1] {
		t.Errorf("records = %+v, want %+v", got.Records, rb.Records)
	}
}

func TestRebindBodyErrors(t *testing.T) {
	if _, err := (&RebindBody{}).Encode(nil); !errors.Is(err, ErrBodyInvalid) {
		t.Errorf("empty rebind encode err = %v", err)
	}
	long := &RebindBody{Records: []RebindRecord{{Epoch: 1, Cut: 1, Spec: strings.Repeat("x", 300)}}}
	if _, err := long.Encode(nil); !errors.Is(err, ErrBodyInvalid) {
		t.Errorf("oversize spec encode err = %v", err)
	}
	noSpec := &RebindBody{Records: []RebindRecord{{Epoch: 1, Cut: 1}}}
	if _, err := noSpec.Encode(nil); !errors.Is(err, ErrBodyInvalid) {
		t.Errorf("empty spec encode err = %v", err)
	}
	if _, err := DecodeRebind(nil); !errors.Is(err, ErrBodyTruncated) {
		t.Errorf("nil decode err = %v", err)
	}
	if _, err := DecodeRebind([]byte{0}); !errors.Is(err, ErrBodyInvalid) {
		t.Errorf("zero-count decode err = %v", err)
	}
	if _, err := DecodeRebind([]byte{1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 5, 'a'}); !errors.Is(err, ErrBodyTruncated) {
		t.Errorf("short spec decode err = %v", err)
	}
}

func BenchmarkPacketEncode(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, 0, p.EncodedSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		if _, err := p.Encode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketDecode(b *testing.B) {
	buf, err := samplePacket().Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
