package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// This file defines the typed payload bodies carried inside packets:
// Ricochet repairs, NAKcast NAK range lists, cumulative ACKs, and
// heartbeats. Each body encodes to/from the Packet.Payload bytes.

// Body encoding errors.
var (
	ErrBodyTruncated = errors.New("wire: truncated body")
	ErrBodyInvalid   = errors.New("wire: invalid body")
)

// Repair is the payload of a TypeRepair packet: the XOR of a set of data
// packets (lateral error correction). A receiver that holds all but one of
// the covered sequence numbers can reconstruct the missing sample by XOR.
//
// XORSentAt and XORPayload are the bitwise XOR of the covered packets'
// origination timestamps (as Unix nanoseconds) and payloads. Payloads
// shorter than the longest covered payload are treated as zero-padded;
// XORLen is the XOR of the individual payload lengths so the reconstructed
// length is recoverable when exactly one packet is missing.
type Repair struct {
	Seqs       []uint64
	XORSentAt  uint64
	XORLen     uint16
	XORPayload []byte
}

const maxRepairSeqs = 64

// AddPacket folds one data packet into the repair.
func (r *Repair) AddPacket(p *Packet) {
	r.Seqs = append(r.Seqs, p.Seq)
	r.XORSentAt ^= uint64(p.SentAt.UnixNano())
	r.XORLen ^= uint16(len(p.Payload))
	if len(p.Payload) > len(r.XORPayload) {
		grown := make([]byte, len(p.Payload))
		copy(grown, r.XORPayload)
		r.XORPayload = grown
	}
	for i, b := range p.Payload {
		r.XORPayload[i] ^= b
	}
}

// Reconstruct XORs the held sibling packets out of the repair and returns
// the missing packet's send time and payload. held must contain every
// covered packet except the missing one.
func (r *Repair) Reconstruct(held []*Packet) (sentAt time.Time, payload []byte, err error) {
	if len(held) != len(r.Seqs)-1 {
		return time.Time{}, nil, fmt.Errorf("%w: need %d siblings, have %d",
			ErrBodyInvalid, len(r.Seqs)-1, len(held))
	}
	ts := r.XORSentAt
	ln := r.XORLen
	buf := append([]byte(nil), r.XORPayload...)
	for _, p := range held {
		ts ^= uint64(p.SentAt.UnixNano())
		ln ^= uint16(len(p.Payload))
		for i, b := range p.Payload {
			buf[i] ^= b
		}
	}
	if int(ln) > len(buf) {
		return time.Time{}, nil, fmt.Errorf("%w: reconstructed length %d exceeds buffer %d",
			ErrBodyInvalid, ln, len(buf))
	}
	return time.Unix(0, int64(ts)), buf[:ln], nil
}

// Encode appends the body encoding to dst.
func (r *Repair) Encode(dst []byte) ([]byte, error) {
	if len(r.Seqs) == 0 || len(r.Seqs) > maxRepairSeqs {
		return dst, fmt.Errorf("%w: repair covers %d seqs", ErrBodyInvalid, len(r.Seqs))
	}
	dst = append(dst, byte(len(r.Seqs)))
	var b8 [8]byte
	for _, s := range r.Seqs {
		binary.BigEndian.PutUint64(b8[:], s)
		dst = append(dst, b8[:]...)
	}
	binary.BigEndian.PutUint64(b8[:], r.XORSentAt)
	dst = append(dst, b8[:]...)
	var b2 [2]byte
	binary.BigEndian.PutUint16(b2[:], r.XORLen)
	dst = append(dst, b2[:]...)
	binary.BigEndian.PutUint16(b2[:], uint16(len(r.XORPayload)))
	dst = append(dst, b2[:]...)
	dst = append(dst, r.XORPayload...)
	return dst, nil
}

// DecodeRepair parses a Repair body.
func DecodeRepair(buf []byte) (*Repair, error) {
	if len(buf) < 1 {
		return nil, ErrBodyTruncated
	}
	n := int(buf[0])
	if n == 0 || n > maxRepairSeqs {
		return nil, fmt.Errorf("%w: repair covers %d seqs", ErrBodyInvalid, n)
	}
	need := 1 + 8*n + 8 + 2 + 2
	if len(buf) < need {
		return nil, ErrBodyTruncated
	}
	r := &Repair{Seqs: make([]uint64, n)}
	off := 1
	for i := 0; i < n; i++ {
		r.Seqs[i] = binary.BigEndian.Uint64(buf[off : off+8])
		off += 8
	}
	r.XORSentAt = binary.BigEndian.Uint64(buf[off : off+8])
	off += 8
	r.XORLen = binary.BigEndian.Uint16(buf[off : off+2])
	off += 2
	plen := int(binary.BigEndian.Uint16(buf[off : off+2]))
	off += 2
	if len(buf) < off+plen {
		return nil, ErrBodyTruncated
	}
	r.XORPayload = append([]byte(nil), buf[off:off+plen]...)
	return r, nil
}

// SeqRange is a half-open-free inclusive range [From, To] of missing
// sequence numbers.
type SeqRange struct {
	From, To uint64
}

// Count returns the number of sequence numbers covered by the range.
func (r SeqRange) Count() uint64 {
	if r.To < r.From {
		return 0
	}
	return r.To - r.From + 1
}

// NakBody is the payload of a TypeNak packet: the ranges of sequence
// numbers a receiver is missing.
type NakBody struct {
	Ranges []SeqRange
}

const maxNakRanges = 255

// Encode appends the body encoding to dst.
func (nb *NakBody) Encode(dst []byte) ([]byte, error) {
	if len(nb.Ranges) == 0 || len(nb.Ranges) > maxNakRanges {
		return dst, fmt.Errorf("%w: %d NAK ranges", ErrBodyInvalid, len(nb.Ranges))
	}
	dst = append(dst, byte(len(nb.Ranges)))
	var b8 [8]byte
	for _, r := range nb.Ranges {
		if r.To < r.From {
			return dst, fmt.Errorf("%w: inverted range [%d,%d]", ErrBodyInvalid, r.From, r.To)
		}
		binary.BigEndian.PutUint64(b8[:], r.From)
		dst = append(dst, b8[:]...)
		binary.BigEndian.PutUint64(b8[:], r.To)
		dst = append(dst, b8[:]...)
	}
	return dst, nil
}

// DecodeNak parses a NakBody.
func DecodeNak(buf []byte) (*NakBody, error) {
	if len(buf) < 1 {
		return nil, ErrBodyTruncated
	}
	n := int(buf[0])
	if n == 0 {
		return nil, fmt.Errorf("%w: empty NAK", ErrBodyInvalid)
	}
	if len(buf) < 1+16*n {
		return nil, ErrBodyTruncated
	}
	nb := &NakBody{Ranges: make([]SeqRange, n)}
	off := 1
	for i := 0; i < n; i++ {
		nb.Ranges[i].From = binary.BigEndian.Uint64(buf[off : off+8])
		nb.Ranges[i].To = binary.BigEndian.Uint64(buf[off+8 : off+16])
		if nb.Ranges[i].To < nb.Ranges[i].From {
			return nil, fmt.Errorf("%w: inverted range", ErrBodyInvalid)
		}
		off += 16
	}
	return nb, nil
}

// AckBody is the payload of a TypeAck packet: a cumulative acknowledgment
// (every sequence <= Cumulative has been received) plus an optional bitmap
// of selectively received packets above it.
type AckBody struct {
	Cumulative uint64
	Bitmap     uint64 // bit i set => Cumulative+1+i received
}

// Encode appends the body encoding to dst.
func (a *AckBody) Encode(dst []byte) ([]byte, error) {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], a.Cumulative)
	binary.BigEndian.PutUint64(b[8:16], a.Bitmap)
	return append(dst, b[:]...), nil
}

// DecodeAck parses an AckBody.
func DecodeAck(buf []byte) (*AckBody, error) {
	if len(buf) < 16 {
		return nil, ErrBodyTruncated
	}
	return &AckBody{
		Cumulative: binary.BigEndian.Uint64(buf[0:8]),
		Bitmap:     binary.BigEndian.Uint64(buf[8:16]),
	}, nil
}

// HeartbeatBody is the payload of a TypeHeartbeat packet: the sender's
// highest published sequence number and its membership incarnation.
type HeartbeatBody struct {
	HighSeq     uint64
	Incarnation uint32
}

// Encode appends the body encoding to dst.
func (h *HeartbeatBody) Encode(dst []byte) ([]byte, error) {
	var b [12]byte
	binary.BigEndian.PutUint64(b[0:8], h.HighSeq)
	binary.BigEndian.PutUint32(b[8:12], h.Incarnation)
	return append(dst, b[:]...), nil
}

// DecodeHeartbeat parses a HeartbeatBody.
func DecodeHeartbeat(buf []byte) (*HeartbeatBody, error) {
	if len(buf) < 12 {
		return nil, ErrBodyTruncated
	}
	return &HeartbeatBody{
		HighSeq:     binary.BigEndian.Uint64(buf[0:8]),
		Incarnation: binary.BigEndian.Uint32(buf[8:12]),
	}, nil
}

// SymbolBody is the payload of a TypeSymbol packet: one Fountcast repair
// symbol. A source block is Count consecutive data packets; the symbol is
// the XOR of the subset selected by a coefficient bit vector that every
// node regenerates deterministically from (Seed, SymbolID), so the packet
// carries only the block coordinates and the seed, never the mask itself.
//
// XORSentAt, XORLen, and XORPayload fold the selected packets' origination
// timestamps (Unix nanoseconds), payload lengths, and zero-padded payloads,
// exactly like Repair — a decoded source symbol therefore reconstructs the
// original packet's send time, so latency accounting survives recovery.
type SymbolBody struct {
	// Block is the source-block index within the stream's sequence space.
	Block uint64
	// Count is the number of source packets in the block (1..64; the
	// stream's final block may be shorter than the configured block size).
	Count uint16
	// SymbolID is the repair symbol's index within the block, starting at
	// 1. Distinct IDs yield independent coefficient draws from the seed.
	SymbolID uint32
	// Seed is the block's coefficient seed.
	Seed       uint64
	XORSentAt  uint64
	XORLen     uint16
	XORPayload []byte
}

// MaxSymbolCount bounds a source block's size: coefficient vectors are one
// 64-bit word.
const MaxSymbolCount = 64

// Encode appends the body encoding to dst.
func (sb *SymbolBody) Encode(dst []byte) ([]byte, error) {
	if sb.Count == 0 || sb.Count > MaxSymbolCount {
		return dst, fmt.Errorf("%w: symbol block of %d sources", ErrBodyInvalid, sb.Count)
	}
	if sb.SymbolID == 0 {
		return dst, fmt.Errorf("%w: symbol id 0", ErrBodyInvalid)
	}
	var b8 [8]byte
	var b4 [4]byte
	var b2 [2]byte
	binary.BigEndian.PutUint64(b8[:], sb.Block)
	dst = append(dst, b8[:]...)
	binary.BigEndian.PutUint16(b2[:], sb.Count)
	dst = append(dst, b2[:]...)
	binary.BigEndian.PutUint32(b4[:], sb.SymbolID)
	dst = append(dst, b4[:]...)
	binary.BigEndian.PutUint64(b8[:], sb.Seed)
	dst = append(dst, b8[:]...)
	binary.BigEndian.PutUint64(b8[:], sb.XORSentAt)
	dst = append(dst, b8[:]...)
	binary.BigEndian.PutUint16(b2[:], sb.XORLen)
	dst = append(dst, b2[:]...)
	binary.BigEndian.PutUint16(b2[:], uint16(len(sb.XORPayload)))
	dst = append(dst, b2[:]...)
	dst = append(dst, sb.XORPayload...)
	return dst, nil
}

// symbolFixedSize is the fixed prefix of a SymbolBody encoding.
const symbolFixedSize = 8 + 2 + 4 + 8 + 8 + 2 + 2

// DecodeSymbol parses a SymbolBody.
func DecodeSymbol(buf []byte) (*SymbolBody, error) {
	if len(buf) < symbolFixedSize {
		return nil, ErrBodyTruncated
	}
	sb := &SymbolBody{
		Block:     binary.BigEndian.Uint64(buf[0:8]),
		Count:     binary.BigEndian.Uint16(buf[8:10]),
		SymbolID:  binary.BigEndian.Uint32(buf[10:14]),
		Seed:      binary.BigEndian.Uint64(buf[14:22]),
		XORSentAt: binary.BigEndian.Uint64(buf[22:30]),
		XORLen:    binary.BigEndian.Uint16(buf[30:32]),
	}
	if sb.Count == 0 || sb.Count > MaxSymbolCount {
		return nil, fmt.Errorf("%w: symbol block of %d sources", ErrBodyInvalid, sb.Count)
	}
	if sb.SymbolID == 0 {
		return nil, fmt.Errorf("%w: symbol id 0", ErrBodyInvalid)
	}
	// XORLen is the XOR of the covered payload lengths, not a length
	// itself, so it carries no bound the payload must satisfy here; the
	// decoder validates reconstructed lengths when it solves the block.
	plen := int(binary.BigEndian.Uint16(buf[32:34]))
	if len(buf) < symbolFixedSize+plen {
		return nil, ErrBodyTruncated
	}
	sb.XORPayload = append([]byte(nil), buf[symbolFixedSize:symbolFixedSize+plen]...)
	return sb, nil
}

// RebindRecord describes one completed or in-progress transport switch on a
// stream: the epoch that was opened, the cut sequence at which the previous
// epoch's sequence space ends (the new epoch publishes from Cut+1 onward),
// and the canonical spec string of the new epoch's protocol.
type RebindRecord struct {
	Epoch uint16
	Cut   uint64 // highest sequence owned by the previous epoch
	Spec  string // canonical transport spec, e.g. "nakcast(timeout=10ms)"
}

// RebindBody is the payload of a TypeRebind packet: the full chain of
// switches performed on the stream, oldest first. Carrying the whole chain
// (rather than just the latest switch) lets a receiver that was partitioned
// across several swaps reconstruct every generation it missed.
type RebindBody struct {
	Records []RebindRecord
}

const (
	maxRebindRecords = 32
	maxRebindSpec    = 255
)

// Encode appends the body encoding to dst.
func (rb *RebindBody) Encode(dst []byte) ([]byte, error) {
	if len(rb.Records) == 0 || len(rb.Records) > maxRebindRecords {
		return dst, fmt.Errorf("%w: %d rebind records", ErrBodyInvalid, len(rb.Records))
	}
	dst = append(dst, byte(len(rb.Records)))
	var b8 [8]byte
	var b2 [2]byte
	for _, r := range rb.Records {
		if len(r.Spec) == 0 || len(r.Spec) > maxRebindSpec {
			return dst, fmt.Errorf("%w: rebind spec length %d", ErrBodyInvalid, len(r.Spec))
		}
		binary.BigEndian.PutUint16(b2[:], r.Epoch)
		dst = append(dst, b2[:]...)
		binary.BigEndian.PutUint64(b8[:], r.Cut)
		dst = append(dst, b8[:]...)
		dst = append(dst, byte(len(r.Spec)))
		dst = append(dst, r.Spec...)
	}
	return dst, nil
}

// DecodeRebind parses a RebindBody.
func DecodeRebind(buf []byte) (*RebindBody, error) {
	if len(buf) < 1 {
		return nil, ErrBodyTruncated
	}
	n := int(buf[0])
	if n == 0 || n > maxRebindRecords {
		return nil, fmt.Errorf("%w: %d rebind records", ErrBodyInvalid, n)
	}
	rb := &RebindBody{Records: make([]RebindRecord, 0, n)}
	off := 1
	for i := 0; i < n; i++ {
		if len(buf) < off+11 {
			return nil, ErrBodyTruncated
		}
		var r RebindRecord
		r.Epoch = binary.BigEndian.Uint16(buf[off : off+2])
		r.Cut = binary.BigEndian.Uint64(buf[off+2 : off+10])
		slen := int(buf[off+10])
		off += 11
		if slen == 0 {
			return nil, fmt.Errorf("%w: empty rebind spec", ErrBodyInvalid)
		}
		if len(buf) < off+slen {
			return nil, ErrBodyTruncated
		}
		r.Spec = string(buf[off : off+slen])
		off += slen
		rb.Records = append(rb.Records, r)
	}
	return rb, nil
}
