// Package probe discovers the computing and networking resources the cloud
// environment has provisioned — ADAMANT's first step. On Linux the real
// source reads /proc/cpuinfo and /proc/meminfo and the NIC speed from
// /sys/class/net/*/speed (the portable equivalent of the paper's ethtool
// query). A static source injects synthetic environments for simulations
// and tests.
package probe

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"adamant/internal/netem"
)

// Info describes a probed environment.
type Info struct {
	CPUModel string
	CPUMHz   float64
	Cores    int
	MemMB    int
	LinkMbps int
}

// String implements fmt.Stringer.
func (i Info) String() string {
	return fmt.Sprintf("cpu=%q %.0fMHz x%d, mem=%dMB, link=%dMbps",
		i.CPUModel, i.CPUMHz, i.Cores, i.MemMB, i.LinkMbps)
}

// Source produces environment information.
type Source interface {
	Probe() (Info, error)
}

// StaticSource returns fixed Info (for simulations and tests).
type StaticSource struct {
	Info Info
}

var _ Source = StaticSource{}

// Probe implements Source.
func (s StaticSource) Probe() (Info, error) { return s.Info, nil }

// ForMachine builds a StaticSource matching a netem machine profile on the
// given emulated LAN bandwidth.
func ForMachine(m netem.Machine, bw netem.Bandwidth) StaticSource {
	return StaticSource{Info: Info{
		CPUModel: m.Name,
		CPUMHz:   float64(m.MHz),
		Cores:    1,
		MemMB:    m.RAMMB,
		LinkMbps: int(int64(bw) / 1_000_000),
	}}
}

// RealSource probes the local host. Zero-value fields default to the
// standard Linux paths.
type RealSource struct {
	CPUInfoPath string // default /proc/cpuinfo
	MemInfoPath string // default /proc/meminfo
	NetClassDir string // default /sys/class/net
}

var _ Source = RealSource{}

func (s RealSource) paths() (cpu, mem, net string) {
	cpu, mem, net = s.CPUInfoPath, s.MemInfoPath, s.NetClassDir
	if cpu == "" {
		cpu = "/proc/cpuinfo"
	}
	if mem == "" {
		mem = "/proc/meminfo"
	}
	if net == "" {
		net = "/sys/class/net"
	}
	return cpu, mem, net
}

// Probe implements Source.
func (s RealSource) Probe() (Info, error) {
	cpuPath, memPath, netDir := s.paths()
	var info Info
	cpuRaw, err := os.ReadFile(cpuPath)
	if err != nil {
		return info, fmt.Errorf("probe: reading cpuinfo: %w", err)
	}
	info.CPUModel, info.CPUMHz, info.Cores = parseCPUInfo(string(cpuRaw))
	if info.Cores == 0 {
		return info, errors.New("probe: no processors found in cpuinfo")
	}
	if memRaw, err := os.ReadFile(memPath); err == nil {
		info.MemMB = parseMemTotalMB(string(memRaw))
	}
	info.LinkMbps = probeLinkMbps(netDir)
	return info, nil
}

func parseCPUInfo(raw string) (model string, mhz float64, cores int) {
	for _, line := range strings.Split(raw, "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "processor":
			cores++
		case "model name":
			if model == "" {
				model = val
			}
		case "cpu MHz":
			if mhz == 0 {
				if v, err := strconv.ParseFloat(val, 64); err == nil {
					mhz = v
				}
			}
		}
	}
	return model, mhz, cores
}

func parseMemTotalMB(raw string) int {
	for _, line := range strings.Split(raw, "\n") {
		if !strings.HasPrefix(line, "MemTotal:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if kb, err := strconv.Atoi(fields[1]); err == nil {
				return kb / 1024
			}
		}
	}
	return 0
}

// probeLinkMbps returns the fastest up NIC speed found, or 0 if none is
// reported (common in VMs and containers).
func probeLinkMbps(netDir string) int {
	entries, err := os.ReadDir(netDir)
	if err != nil {
		return 0
	}
	best := 0
	for _, e := range entries {
		if e.Name() == "lo" {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(netDir, e.Name(), "speed"))
		if err != nil {
			continue
		}
		v, err := strconv.Atoi(strings.TrimSpace(string(raw)))
		if err != nil || v <= 0 {
			continue
		}
		if v > best {
			best = v
		}
	}
	return best
}

// NearestMachine maps probed CPU speed to the closest known machine
// profile (the granularity the ANN was trained on).
func NearestMachine(info Info) netem.Machine {
	candidates := []netem.Machine{netem.PC850, netem.PC1500, netem.PC3000, netem.PC5000}
	best := candidates[0]
	bestDist := dist(info.CPUMHz, float64(best.MHz))
	for _, m := range candidates[1:] {
		if d := dist(info.CPUMHz, float64(m.MHz)); d < bestDist {
			best, bestDist = m, d
		}
	}
	return best
}

// NearestBandwidth maps a probed link speed to the closest trained LAN
// bandwidth.
func NearestBandwidth(info Info) netem.Bandwidth {
	mbps := float64(info.LinkMbps)
	if mbps <= 0 {
		return netem.Gbps1 // assume datacenter-grade if unreported
	}
	candidates := []netem.Bandwidth{netem.Mbps10, netem.Mbps100, netem.Gbps1}
	best := candidates[0]
	bestDist := dist(mbps, float64(int64(best))/1e6)
	for _, b := range candidates[1:] {
		if d := dist(mbps, float64(int64(b))/1e6); d < bestDist {
			best, bestDist = b, d
		}
	}
	return best
}

func dist(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
