package probe

import (
	"os"
	"path/filepath"
	"testing"

	"adamant/internal/netem"
)

const sampleCPUInfo = `processor	: 0
vendor_id	: GenuineIntel
model name	: Intel(R) Xeon(R) CPU @ 2.80GHz
cpu MHz		: 2794.748
cache size	: 512 KB

processor	: 1
model name	: Intel(R) Xeon(R) CPU @ 2.80GHz
cpu MHz		: 2794.748
`

const sampleMemInfo = `MemTotal:        2097152 kB
MemFree:          524288 kB
`

func writeFakeSys(t *testing.T) RealSource {
	t.Helper()
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpuinfo")
	mem := filepath.Join(dir, "meminfo")
	netDir := filepath.Join(dir, "net")
	if err := os.WriteFile(cpu, []byte(sampleCPUInfo), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mem, []byte(sampleMemInfo), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, nic := range []struct {
		name, speed string
	}{{"lo", "0"}, {"eth0", "1000"}, {"eth1", "100"}, {"down0", "-1"}} {
		d := filepath.Join(netDir, nic.name)
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(d, "speed"), []byte(nic.speed+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return RealSource{CPUInfoPath: cpu, MemInfoPath: mem, NetClassDir: netDir}
}

func TestRealSourceProbe(t *testing.T) {
	src := writeFakeSys(t)
	info, err := src.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if info.Cores != 2 {
		t.Errorf("Cores = %d, want 2", info.Cores)
	}
	if info.CPUMHz < 2794 || info.CPUMHz > 2795 {
		t.Errorf("CPUMHz = %v", info.CPUMHz)
	}
	if info.CPUModel == "" {
		t.Error("empty CPU model")
	}
	if info.MemMB != 2048 {
		t.Errorf("MemMB = %d, want 2048", info.MemMB)
	}
	if info.LinkMbps != 1000 {
		t.Errorf("LinkMbps = %d, want 1000 (fastest up NIC, lo excluded)", info.LinkMbps)
	}
	if info.String() == "" {
		t.Error("empty String()")
	}
}

func TestRealSourceErrors(t *testing.T) {
	src := RealSource{CPUInfoPath: "/nonexistent/cpuinfo"}
	if _, err := src.Probe(); err == nil {
		t.Error("missing cpuinfo should error")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "cpuinfo")
	if err := os.WriteFile(empty, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src = RealSource{CPUInfoPath: empty, MemInfoPath: "/nonexistent", NetClassDir: "/nonexistent"}
	if _, err := src.Probe(); err == nil {
		t.Error("cpuinfo without processors should error")
	}
}

func TestRealHostProbe(t *testing.T) {
	// On any Linux host the default paths should work.
	if _, err := os.Stat("/proc/cpuinfo"); err != nil {
		t.Skip("no /proc/cpuinfo on this platform")
	}
	info, err := RealSource{}.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if info.Cores < 1 {
		t.Errorf("Cores = %d", info.Cores)
	}
}

func TestStaticAndForMachine(t *testing.T) {
	src := ForMachine(netem.PC850, netem.Mbps100)
	info, err := src.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if info.CPUMHz != 850 || info.LinkMbps != 100 || info.MemMB != 256 {
		t.Errorf("info = %+v", info)
	}
}

func TestNearestMachine(t *testing.T) {
	tests := []struct {
		mhz  float64
		want string
	}{
		{400, "pc850"},
		{900, "pc850"},
		{1400, "pc1500"},
		{2800, "pc3000"},
		{3200, "pc3000"},
		{4800, "pc5000"},
	}
	for _, tt := range tests {
		if got := NearestMachine(Info{CPUMHz: tt.mhz}); got.Name != tt.want {
			t.Errorf("NearestMachine(%v MHz) = %s, want %s", tt.mhz, got.Name, tt.want)
		}
	}
}

func TestNearestBandwidth(t *testing.T) {
	tests := []struct {
		mbps int
		want netem.Bandwidth
	}{
		{0, netem.Gbps1}, // unreported: assume datacenter-grade
		{8, netem.Mbps10},
		{80, netem.Mbps100},
		{400, netem.Mbps100},
		{900, netem.Gbps1},
		{10000, netem.Gbps1},
	}
	for _, tt := range tests {
		if got := NearestBandwidth(Info{LinkMbps: tt.mbps}); got != tt.want {
			t.Errorf("NearestBandwidth(%d) = %v, want %v", tt.mbps, got, tt.want)
		}
	}
}
