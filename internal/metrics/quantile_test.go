package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func exactQuantile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func TestP2QuantileValidation(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewP2Quantile(p); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
	q, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Value(); err == nil {
		t.Error("Value with no observations should error")
	}
}

func TestP2QuantileSmallN(t *testing.T) {
	q, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{9, 1, 5} {
		q.Add(x)
	}
	v, err := q.Value()
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Errorf("median of {1,5,9} = %v, want 5 (exact fallback)", v)
	}
	if q.Count() != 3 {
		t.Errorf("Count = %d", q.Count())
	}
}

func TestP2QuantileUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []float64{0.5, 0.95, 0.99} {
		q, err := NewP2Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		var xs []float64
		for i := 0; i < 20000; i++ {
			x := rng.Float64() * 1000
			xs = append(xs, x)
			q.Add(x)
		}
		got, err := q.Value()
		if err != nil {
			t.Fatal(err)
		}
		want := exactQuantile(xs, p)
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("p%v: estimate %.1f vs exact %.1f (rel err %.3f)", p*100, got, want, rel)
		}
	}
}

func TestP2QuantileBimodal(t *testing.T) {
	// Latency-like distribution: 95% fast around 1ms, 5% recoveries around
	// 100ms. p50 must sit in the fast mode, p99 in the slow one.
	rng := rand.New(rand.NewSource(2))
	tail := NewLatencyTail()
	for i := 0; i < 50000; i++ {
		x := 1000 + rng.NormFloat64()*50
		if rng.Float64() < 0.05 {
			x = 100000 + rng.NormFloat64()*5000
		}
		tail.Add(x)
	}
	p50, p95, p99 := tail.Snapshot()
	if p50 < 800 || p50 > 1200 {
		t.Errorf("p50 = %.0f, want ~1000", p50)
	}
	if p99 < 80000 {
		t.Errorf("p99 = %.0f, want in the recovery mode (~100000)", p99)
	}
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not monotone: %v %v %v", p50, p95, p99)
	}
}

// Property: estimates are always within the observed range and quantile
// ordering is preserved.
func TestP2QuantileProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := 5 + int(nRaw%2000)
		rng := rand.New(rand.NewSource(seed))
		q50, err := NewP2Quantile(0.5)
		if err != nil {
			return false
		}
		q95, err := NewP2Quantile(0.95)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()*100 + 500
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			q50.Add(x)
			q95.Add(x)
		}
		v50, err := q50.Value()
		if err != nil {
			return false
		}
		v95, err := q95.Value()
		if err != nil {
			return false
		}
		return v50 >= lo && v95 <= hi && v50 <= v95+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLatencyTailEmpty(t *testing.T) {
	p50, p95, p99 := NewLatencyTail().Snapshot()
	if p50 != 0 || p95 != 0 || p99 != 0 {
		t.Error("empty tail should snapshot zeros")
	}
}

// TestAddAllocationFree pins the per-sample hot path: every Add, including
// the fifth observation's inline bootstrap sort, stays out of the allocator.
func TestAddAllocationFree(t *testing.T) {
	const runs = 100
	rng := rand.New(rand.NewSource(2))
	qs := make([]*P2Quantile, runs+1) // AllocsPerRun warms up with one extra call
	for i := range qs {
		q, err := NewP2Quantile(0.95)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	next := 0
	allocs := testing.AllocsPerRun(runs, func() {
		q := qs[next]
		next++
		for j := 0; j < 64; j++ {
			q.Add(rng.Float64())
		}
	})
	if allocs != 0 {
		t.Errorf("P2Quantile.Add allocated %.1f times per 64 observations, want 0", allocs)
	}
}

func TestInsertionSortBootstrap(t *testing.T) {
	q, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{5, 1, 4, 2, 3} {
		q.Add(x)
	}
	want := [5]float64{1, 2, 3, 4, 5}
	if q.heights != want {
		t.Errorf("bootstrap heights = %v, want %v", q.heights, want)
	}
}

func BenchmarkP2QuantileAdd(b *testing.B) {
	q, err := NewP2Quantile(0.99)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Add(xs[i&1023])
	}
}
