package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d", w.Count())
	}
	if !almostEqual(w.Mean(), 5, 1e-9) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	if !almostEqual(w.StdDev(), 2, 1e-9) {
		t.Errorf("StdDev = %v, want 2", w.StdDev())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.StdDev() != 0 || w.Variance() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	w.Add(42)
	if w.Mean() != 42 || w.StdDev() != 0 {
		t.Errorf("single obs: mean=%v std=%v", w.Mean(), w.StdDev())
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestWelfordMergeProperty(t *testing.T) {
	f := func(seed int64, nA, nB uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b, all Welford
		for i := 0; i < int(nA); i++ {
			x := rng.NormFloat64()*10 + 50
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < int(nB); i++ {
			x := rng.NormFloat64()*3 - 20
			b.Add(x)
			all.Add(x)
		}
		a.Merge(&b)
		return a.Count() == all.Count() &&
			almostEqual(a.Mean(), all.Mean(), 1e-6) &&
			almostEqual(a.Variance(), all.Variance(), 1e-5) &&
			almostEqual(a.Min(), all.Min(), 0) &&
			almostEqual(a.Max(), all.Max(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeIntoEmpty(t *testing.T) {
	var a, b Welford
	b.Add(1)
	b.Add(3)
	a.Merge(&b)
	if a.Count() != 2 || a.Mean() != 2 {
		t.Errorf("merge into empty: count=%d mean=%v", a.Count(), a.Mean())
	}
	var c Welford
	a.Merge(&c) // merging empty is a no-op
	if a.Count() != 2 {
		t.Errorf("merge of empty changed count to %d", a.Count())
	}
}

func TestReLate2PaperExamples(t *testing.T) {
	// From the paper: 1000us latency, 0% loss -> 1000; 9% -> 10000; 19% -> 20000.
	tests := []struct {
		latUs, lossPct, want float64
	}{
		{1000, 0, 1000},
		{1000, 9, 10000},
		{1000, 19, 20000},
		{500, 5, 3000},
	}
	for _, tt := range tests {
		if got := ReLate2(tt.latUs, tt.lossPct); !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("ReLate2(%v, %v) = %v, want %v", tt.latUs, tt.lossPct, got, tt.want)
		}
	}
}

func TestReLate2Jit(t *testing.T) {
	if got := ReLate2Jit(1000, 9, 2); !almostEqual(got, 20000, 1e-9) {
		t.Errorf("ReLate2Jit = %v, want 20000", got)
	}
}

// Properties: ReLate2 >= latency for any non-negative loss, and is monotone
// in both latency and loss.
func TestReLate2Properties(t *testing.T) {
	f := func(latRaw, lossRaw uint16) bool {
		lat := float64(latRaw)
		loss := float64(lossRaw%101) / 1.0
		v := ReLate2(lat, loss)
		if v < lat {
			return false
		}
		if ReLate2(lat+1, loss) < v {
			return false
		}
		if ReLate2(lat, loss+1) < v {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCollectorSummary(t *testing.T) {
	base := time.Unix(1000, 0)
	var c Collector
	// 95 direct deliveries at 1ms, 4 recovered at 10ms, 1 lost (of 100).
	for i := 0; i < 95; i++ {
		c.OnDeliver(base, base.Add(time.Millisecond), false)
	}
	for i := 0; i < 4; i++ {
		c.OnDeliver(base, base.Add(10*time.Millisecond), true)
	}
	s := c.Summary(100)
	if s.Delivered != 99 || s.Recovered != 4 {
		t.Errorf("delivered=%d recovered=%d", s.Delivered, s.Recovered)
	}
	if !almostEqual(s.LossPct, 1.0, 1e-9) {
		t.Errorf("LossPct = %v, want 1", s.LossPct)
	}
	if !almostEqual(s.Reliability(), 99, 1e-9) {
		t.Errorf("Reliability = %v, want 99", s.Reliability())
	}
	wantAvg := (95*1000.0 + 4*10000.0) / 99
	if !almostEqual(s.AvgLatencyUs, wantAvg, 1e-6) {
		t.Errorf("AvgLatencyUs = %v, want %v", s.AvgLatencyUs, wantAvg)
	}
	if !almostEqual(s.ReLate2, wantAvg*2, 1e-6) {
		t.Errorf("ReLate2 = %v, want %v", s.ReLate2, wantAvg*2)
	}
	if s.ReLate2Jit <= s.ReLate2 {
		t.Errorf("ReLate2Jit = %v should exceed ReLate2 = %v for jitter > 1", s.ReLate2Jit, s.ReLate2)
	}
}

func TestCollectorDeliveredExceedsSent(t *testing.T) {
	// Duplicate-free overdelivery (e.g. sent counter not yet final) must not
	// produce negative loss.
	base := time.Unix(0, 0)
	var c Collector
	c.OnDeliver(base, base.Add(time.Millisecond), false)
	c.OnDeliver(base, base.Add(time.Millisecond), false)
	s := c.Summary(1)
	if s.LossPct != 0 {
		t.Errorf("LossPct = %v, want 0 (clamped)", s.LossPct)
	}
}

func TestCollectorZeroSent(t *testing.T) {
	var c Collector
	s := c.Summary(0)
	if s.LossPct != 0 || s.Reliability() != 0 {
		t.Errorf("zero-sent summary: %+v", s)
	}
}

func TestCollectorMerge(t *testing.T) {
	base := time.Unix(0, 0)
	var a, b Collector
	a.OnDeliver(base, base.Add(time.Millisecond), false)
	b.OnDeliver(base, base.Add(3*time.Millisecond), true)
	b.OnDuplicate()
	b.OnBytes(base, 100)
	a.Merge(&b)
	s := a.Summary(2)
	if s.Delivered != 2 || s.Recovered != 1 || s.Duplicates != 1 {
		t.Errorf("merged summary: %+v", s)
	}
	if !almostEqual(s.AvgLatencyUs, 2000, 1e-9) {
		t.Errorf("AvgLatencyUs = %v, want 2000", s.AvgLatencyUs)
	}
	if s.Bytes != 100 {
		t.Errorf("Bytes = %d, want 100", s.Bytes)
	}
}

func TestBandwidth(t *testing.T) {
	var b Bandwidth
	t0 := time.Unix(100, 0)
	b.Add(t0, 1000)
	b.Add(t0.Add(500*time.Millisecond), 1000) // same second
	b.Add(t0.Add(2*time.Second), 4000)        // second 102; second 101 empty
	if b.Total() != 6000 {
		t.Errorf("Total = %d", b.Total())
	}
	if got, want := b.MeanRate(), 2000.0; !almostEqual(got, want, 1e-9) {
		t.Errorf("MeanRate = %v, want %v", got, want)
	}
	// Buckets: 2000, 0, 4000 -> mean 2000, variance (0+4e6+4e6)/3.
	wantStd := math.Sqrt((4e6 + 0 + 4e6) / 3)
	if got := b.Burstiness(); !almostEqual(got, wantStd, 1e-6) {
		t.Errorf("Burstiness = %v, want %v", got, wantStd)
	}
}

func TestBandwidthEmptyAndNegative(t *testing.T) {
	var b Bandwidth
	if b.MeanRate() != 0 || b.Burstiness() != 0 || b.Total() != 0 {
		t.Error("empty bandwidth should report zeros")
	}
	b.Add(time.Unix(0, 0), -5)
	if b.Total() != 0 {
		t.Error("negative byte counts must be ignored")
	}
}

func TestBandwidthMerge(t *testing.T) {
	var a, b Bandwidth
	a.Add(time.Unix(10, 0), 100)
	b.Add(time.Unix(10, 0), 50)
	b.Add(time.Unix(11, 0), 200)
	a.Merge(&b)
	if a.Total() != 350 {
		t.Errorf("Total = %d, want 350", a.Total())
	}
	if got := a.MeanRate(); !almostEqual(got, 175, 1e-9) {
		t.Errorf("MeanRate = %v, want 175", got)
	}
}

func TestSummaryString(t *testing.T) {
	var c Collector
	c.OnDeliver(time.Unix(0, 0), time.Unix(0, int64(time.Millisecond)), false)
	got := c.Summary(1).String()
	if got == "" {
		t.Error("empty String()")
	}
}
