package metrics

import (
	"errors"
	"fmt"
)

// P2Quantile estimates a single quantile online in O(1) space using the
// P-square algorithm (Jain & Chlamtac, 1985). The latency tails the paper's
// jitter discussion cares about (p95/p99) are exactly what a mean/stddev
// pair hides, so Summary production code can afford to track them without
// storing every observation.
type P2Quantile struct {
	p       float64
	n       int        // observations so far
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	incr    [5]float64 // desired position increments per observation
}

// NewP2Quantile returns an estimator for the p-quantile, 0 < p < 1.
func NewP2Quantile(p float64) (*P2Quantile, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("metrics: quantile %v out of (0,1)", p)
	}
	q := &P2Quantile{p: p}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.incr = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q, nil
}

// Add folds one observation into the estimator.
func (q *P2Quantile) Add(x float64) {
	if q.n < 5 {
		q.heights[q.n] = x
		q.n++
		if q.n == 5 {
			insertionSort5(&q.heights, 5)
			for i := range q.pos {
				q.pos[i] = float64(i + 1)
			}
		}
		return
	}
	q.n++

	// Find the cell k such that heights[k] <= x < heights[k+1], adjusting
	// extremes.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.incr[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

func (q *P2Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *P2Quantile) linear(i int, d float64) float64 {
	di := int(d)
	return q.heights[i] + d*(q.heights[i+di]-q.heights[i])/(q.pos[i+di]-q.pos[i])
}

// Count returns the number of observations.
func (q *P2Quantile) Count() int { return q.n }

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact order statistic.
func (q *P2Quantile) Value() (float64, error) {
	if q.n == 0 {
		return 0, errors.New("metrics: no observations")
	}
	if q.n < 5 {
		var tmp [5]float64
		copy(tmp[:], q.heights[:q.n])
		insertionSort5(&tmp, q.n)
		idx := int(q.p * float64(q.n))
		if idx >= q.n {
			idx = q.n - 1
		}
		return tmp[idx], nil
	}
	return q.heights[2], nil
}

// insertionSort5 sorts the first n elements of a five-element array in
// place. Add calls it exactly once, on the fifth observation, so the
// bootstrap stays inline and free of the sort package's interface machinery
// (keeping Add allocation-free and cheap on the per-sample hot path).
func insertionSort5(a *[5]float64, n int) {
	for i := 1; i < n; i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// LatencyTail tracks the paper-relevant latency quantiles (p50, p95, p99)
// online. The zero value is not usable; construct with NewLatencyTail.
type LatencyTail struct {
	p50, p95, p99 *P2Quantile
}

// NewLatencyTail returns a three-quantile latency tracker.
func NewLatencyTail() *LatencyTail {
	p50, err := NewP2Quantile(0.50)
	if err != nil {
		panic(err) // static quantiles; cannot fail
	}
	p95, err := NewP2Quantile(0.95)
	if err != nil {
		panic(err)
	}
	p99, err := NewP2Quantile(0.99)
	if err != nil {
		panic(err)
	}
	return &LatencyTail{p50: p50, p95: p95, p99: p99}
}

// Add records one latency observation (any consistent unit).
func (l *LatencyTail) Add(x float64) {
	l.p50.Add(x)
	l.p95.Add(x)
	l.p99.Add(x)
}

// Snapshot returns the current (p50, p95, p99) estimates; zeros with no
// observations.
func (l *LatencyTail) Snapshot() (p50, p95, p99 float64) {
	p50, _ = l.p50.Value()
	p95, _ = l.p95.Value()
	p99, _ = l.p99.Value()
	return p50, p95, p99
}
