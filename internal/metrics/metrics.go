// Package metrics implements the composite QoS metrics the paper uses to
// give a single objective score to a (middleware, transport, environment)
// combination:
//
//   - ReLate2: average delivery latency multiplied by (percent loss + 1),
//     so 9% loss at equal latency scores 10x worse than lossless.
//   - ReLate2Jit: ReLate2 further multiplied by jitter (the standard
//     deviation of delivery latency).
//
// It also provides the constituent collectors: per-receiver latency and
// jitter accumulators (Welford online variance), reliability accounting,
// and per-second bandwidth tracking from which burstiness (the standard
// deviation of bytes-per-second) is derived.
package metrics

import (
	"fmt"
	"math"
	"time"
)

// Welford accumulates mean and variance online in a numerically stable way.
// The zero value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance, or 0 with fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation, or 0 with none.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 with none.
func (w *Welford) Max() float64 { return w.max }

// Merge folds other into w, as if every observation of other had been added
// to w (Chan et al. parallel variance combination).
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	w.m2 += other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	w.mean += delta * float64(other.n) / float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n = n
}

// ReLate2 combines average latency (in microseconds) with percent loss
// (in percentage points, e.g. 5.0 for 5%): avgLatencyUs * (lossPct + 1).
// A 0% loss stream scores exactly its latency; 9% loss scores 10x.
func ReLate2(avgLatencyUs, lossPct float64) float64 {
	return avgLatencyUs * (lossPct + 1)
}

// ReLate2Jit combines ReLate2 with jitter (standard deviation of latency,
// microseconds): ReLate2 * jitter.
func ReLate2Jit(avgLatencyUs, lossPct, jitterUs float64) float64 {
	return ReLate2(avgLatencyUs, lossPct) * jitterUs
}

// Collector accumulates delivery observations for one receiver (or, after
// Merge, a set of receivers). The zero value is ready to use.
type Collector struct {
	latencyUs Welford
	recovered uint64
	delivered uint64
	duplicate uint64
	bw        Bandwidth
}

// OnDeliver records a sample delivered to the application. recovered marks
// samples reconstructed by the transport (repair or retransmission) rather
// than received directly.
func (c *Collector) OnDeliver(sentAt, deliveredAt time.Time, recovered bool) {
	c.delivered++
	if recovered {
		c.recovered++
	}
	c.latencyUs.Add(float64(deliveredAt.Sub(sentAt)) / float64(time.Microsecond))
}

// OnDuplicate records a duplicate delivery suppressed by the transport.
func (c *Collector) OnDuplicate() { c.duplicate++ }

// OnBytes records network bytes attributable to this receiver at time t
// (for bandwidth-usage and burstiness accounting).
func (c *Collector) OnBytes(t time.Time, n int) { c.bw.Add(t, n) }

// Merge folds other's observations into c.
func (c *Collector) Merge(other *Collector) {
	c.latencyUs.Merge(&other.latencyUs)
	c.recovered += other.recovered
	c.delivered += other.delivered
	c.duplicate += other.duplicate
	c.bw.Merge(&other.bw)
}

// Delivered returns the number of samples delivered.
func (c *Collector) Delivered() uint64 { return c.delivered }

// Summary computes the composite metrics given the number of samples the
// writer actually sent to this receiver (i.e. per-receiver expected count).
func (c *Collector) Summary(sent uint64) Summary {
	s := Summary{
		Sent:          sent,
		Delivered:     c.delivered,
		Recovered:     c.recovered,
		Duplicates:    c.duplicate,
		AvgLatencyUs:  c.latencyUs.Mean(),
		JitterUs:      c.latencyUs.StdDev(),
		MinLatencyUs:  c.latencyUs.Min(),
		MaxLatencyUs:  c.latencyUs.Max(),
		Bytes:         c.bw.Total(),
		BurstinessBps: c.bw.Burstiness(),
		AvgBps:        c.bw.MeanRate(),
	}
	if sent > 0 {
		lost := float64(0)
		if sent > c.delivered {
			lost = float64(sent - c.delivered)
		}
		s.LossPct = 100 * lost / float64(sent)
	}
	s.ReLate2 = ReLate2(s.AvgLatencyUs, s.LossPct)
	s.ReLate2Jit = ReLate2Jit(s.AvgLatencyUs, s.LossPct, s.JitterUs)
	return s
}

// Summary is the computed QoS scorecard for one experiment run.
type Summary struct {
	Sent         uint64
	Delivered    uint64
	Recovered    uint64
	Duplicates   uint64
	LossPct      float64 // unrecovered loss, percentage points
	AvgLatencyUs float64
	JitterUs     float64
	MinLatencyUs float64
	MaxLatencyUs float64
	ReLate2      float64
	ReLate2Jit   float64
	// Latency tail quantiles (microseconds), when the producer tracked
	// them (see LatencyTail); zero otherwise.
	P50LatencyUs  float64
	P95LatencyUs  float64
	P99LatencyUs  float64
	Bytes         uint64  // network bytes observed
	AvgBps        float64 // mean bandwidth usage, bytes/sec
	BurstinessBps float64 // stddev of per-second bandwidth usage
}

// Reliability returns delivered/sent as a percentage (100 = perfect).
func (s Summary) Reliability() float64 {
	if s.Sent == 0 {
		return 0
	}
	return 100 * float64(s.Delivered) / float64(s.Sent)
}

// String implements fmt.Stringer with the fields the paper's figures report.
func (s Summary) String() string {
	return fmt.Sprintf("rel=%.2f%% lat=%.0fus jit=%.0fus relate2=%.0f relate2jit=%.3g",
		s.Reliability(), s.AvgLatencyUs, s.JitterUs, s.ReLate2, s.ReLate2Jit)
}

// Bandwidth tracks bytes per one-second bucket so that total usage, mean
// rate, and burstiness (stddev of per-second usage) can be reported. The
// zero value is ready to use.
//
// Buckets are a dense preallocated slice anchored at the first observed
// second rather than a map: experiment traffic is contiguous in time, and
// Add sits on the per-packet hot path of every receiver, so bucket updates
// must be an index increment rather than a map probe.
type Bandwidth struct {
	base    int64    // unix second of buckets[0]; meaningful when len(buckets) > 0
	buckets []uint64 // bytes per second, dense from base
	total   uint64
}

// bandwidthHint is the initial bucket capacity: most experiment runs span
// well under a minute of virtual time.
const bandwidthHint = 64

// Add records n bytes observed at time t.
func (b *Bandwidth) Add(t time.Time, n int) {
	if n <= 0 {
		return
	}
	sec := t.Unix()
	if len(b.buckets) == 0 {
		b.base = sec
		if b.buckets == nil {
			b.buckets = make([]uint64, 0, bandwidthHint)
		}
	}
	idx := sec - b.base
	if idx < 0 {
		// Out-of-order observation before the anchor: re-anchor and shift.
		grown := make([]uint64, int64(len(b.buckets))-idx)
		copy(grown[-idx:], b.buckets)
		b.buckets = grown
		b.base = sec
		idx = 0
	}
	for int64(len(b.buckets)) <= idx {
		b.buckets = append(b.buckets, 0)
	}
	b.buckets[idx] += uint64(n)
	b.total += uint64(n)
}

// Merge folds other into b.
func (b *Bandwidth) Merge(other *Bandwidth) {
	if len(other.buckets) > 0 {
		if len(b.buckets) == 0 {
			b.base = other.base
			b.buckets = append(b.buckets[:0], other.buckets...)
		} else {
			lo := b.base
			if other.base < lo {
				lo = other.base
			}
			hi := b.end()
			if oe := other.end(); oe > hi {
				hi = oe
			}
			merged := make([]uint64, hi-lo+1)
			copy(merged[b.base-lo:], b.buckets)
			for i, v := range other.buckets {
				merged[other.base-lo+int64(i)] += v
			}
			b.base = lo
			b.buckets = merged
		}
	}
	b.total += other.total
}

// end returns the unix second of the last bucket; only valid when buckets
// is non-empty.
func (b *Bandwidth) end() int64 { return b.base + int64(len(b.buckets)) - 1 }

// Total returns the total bytes recorded.
func (b *Bandwidth) Total() uint64 { return b.total }

// MeanRate returns the mean bytes/second across the active interval
// (first bucket through last bucket, inclusive).
func (b *Bandwidth) MeanRate() float64 {
	if len(b.buckets) == 0 {
		return 0
	}
	return float64(b.total) / float64(len(b.buckets))
}

// Burstiness returns the standard deviation of bytes-per-second over the
// active interval, counting empty seconds inside the interval as zero.
func (b *Bandwidth) Burstiness() float64 {
	if len(b.buckets) == 0 {
		return 0
	}
	var w Welford
	for _, v := range b.buckets {
		w.Add(float64(v))
	}
	return w.StdDev()
}
