package metrics_test

import (
	"fmt"
	"time"

	"adamant/internal/metrics"
)

func ExampleReLate2() {
	// The paper's worked example: 1000us average latency at 0%, 9%, and
	// 19% loss.
	fmt.Println(metrics.ReLate2(1000, 0))
	fmt.Println(metrics.ReLate2(1000, 9))
	fmt.Println(metrics.ReLate2(1000, 19))
	// Output:
	// 1000
	// 10000
	// 20000
}

func ExampleCollector() {
	var c metrics.Collector
	sent := time.Unix(100, 0)
	c.OnDeliver(sent, sent.Add(1*time.Millisecond), false)
	c.OnDeliver(sent, sent.Add(3*time.Millisecond), true) // recovered sample
	s := c.Summary(2)
	fmt.Printf("reliability %.0f%%, avg latency %.0fus, recovered %d\n",
		s.Reliability(), s.AvgLatencyUs, s.Recovered)
	// Output: reliability 100%, avg latency 2000us, recovered 1
}

func ExampleWelford() {
	var w metrics.Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	fmt.Printf("mean=%.0f stddev=%.0f\n", w.Mean(), w.StdDev())
	// Output: mean=5 stddev=2
}
