// Package env abstracts the execution environment — clock, timers, and
// randomness — so that transport protocols and middleware are written once
// as event-driven state machines and run unchanged in two worlds:
//
//   - SimEnv: virtual time driven by the deterministic discrete-event kernel
//     in package sim (the Emulab-substitute used by every experiment), and
//   - RealEnv: wall-clock time with callbacks serialized on one goroutine
//     (used by the loopback/UDP examples).
//
// The serialization guarantee is the load-bearing part of the contract:
// an Env never runs two callbacks concurrently, so protocol state machines
// need no locks.
package env

import (
	"math/rand"
	"sync"
	"time"

	"adamant/internal/sim"
)

// Timer is a cancelable pending callback.
type Timer interface {
	// Stop cancels the timer. It returns false if the callback already ran
	// or the timer was already stopped. After Stop returns true the
	// callback will never run.
	Stop() bool
}

// Env is the execution environment handed to protocol state machines.
//
// Callbacks passed to After and Post are executed serially: no two callbacks
// from the same Env ever run concurrently, and Now is only meaningful from
// inside a callback or from the driving goroutine.
type Env interface {
	// Now returns the current time (virtual or wall-clock).
	Now() time.Time
	// After schedules fn to run d from now.
	After(d time.Duration, fn func()) Timer
	// Schedule is the fire-and-forget form of After: fn runs d from now
	// with no way to cancel it. Hot paths that never cancel should prefer
	// it — SimEnv recycles the underlying event through the kernel's free
	// list, so Schedule does not allocate once the simulation is warm.
	Schedule(d time.Duration, fn func())
	// ScheduleArg is the closure-free form of Schedule: fn(arg) runs d from
	// now. Hot paths that would capture per-event state in a closure (one
	// allocation per packet hop) pass a static fn and a pooled arg instead;
	// under SimEnv the steady-state cost is zero allocations per event.
	ScheduleArg(d time.Duration, fn func(arg any), arg any)
	// Post schedules fn to run as soon as possible, after any callbacks
	// already queued. It is the bridge for external events (e.g. packets
	// read from a real socket).
	Post(fn func())
	// Rand returns a named deterministic random stream. In SimEnv equal
	// names yield identical streams for a given seed; RealEnv streams are
	// seeded from the wall clock.
	Rand(name string) *rand.Rand
}

// SimEnv adapts a sim.Kernel to the Env interface.
type SimEnv struct {
	k *sim.Kernel
}

var _ Env = (*SimEnv)(nil)

// NewSim wraps kernel as an Env.
func NewSim(kernel *sim.Kernel) *SimEnv { return &SimEnv{k: kernel} }

// Kernel returns the underlying simulation kernel.
func (s *SimEnv) Kernel() *sim.Kernel { return s.k }

// Now implements Env.
func (s *SimEnv) Now() time.Time { return s.k.Now() }

// After implements Env.
func (s *SimEnv) After(d time.Duration, fn func()) Timer { return simTimer{s.k.After(d, fn)} }

// Schedule implements Env through the kernel's pooled fire-and-forget path.
func (s *SimEnv) Schedule(d time.Duration, fn func()) { s.k.Schedule(d, fn) }

// ScheduleArg implements Env through the kernel's closure-free pooled path.
func (s *SimEnv) ScheduleArg(d time.Duration, fn func(arg any), arg any) {
	s.k.ScheduleArg(d, fn, arg)
}

// Post implements Env.
func (s *SimEnv) Post(fn func()) { s.k.Schedule(0, fn) }

// Rand implements Env.
func (s *SimEnv) Rand(name string) *rand.Rand { return s.k.Rand(name) }

type simTimer struct{ e *sim.Event }

func (t simTimer) Stop() bool { return t.e.Cancel() }

// LaneEnv adapts one lane of a sim.Sharded engine to the Env interface.
// The serialization contract holds per lane: the engine never runs two
// callbacks of the same lane concurrently (different lanes do run in
// parallel, which is safe because protocol stacks share no state across
// nodes). Rand derives streams exactly as a single shared SimEnv would —
// same seed, same names, same streams — so a component moved onto a lane
// keeps the randomness it had on the classic single-kernel path; callers
// that need per-lane decorrelation put a node/lane id in the name, as
// netem already does.
type LaneEnv struct {
	sh   *sim.Sharded
	lane int
}

var _ Env = (*LaneEnv)(nil)

// NewLane wraps lane lane of sh as an Env.
func NewLane(sh *sim.Sharded, lane int) *LaneEnv { return &LaneEnv{sh: sh, lane: lane} }

// Lane returns the lane index this env is bound to.
func (s *LaneEnv) Lane() int { return s.lane }

// Sharded returns the underlying sharded engine.
func (s *LaneEnv) Sharded() *sim.Sharded { return s.sh }

// Kernel returns the lane's kernel (single-threaded contract: only from
// this lane's callbacks or between runs).
func (s *LaneEnv) Kernel() *sim.Kernel { return s.sh.LaneKernel(s.lane) }

// Now implements Env using the lane-local clock.
func (s *LaneEnv) Now() time.Time { return s.Kernel().Now() }

// After implements Env.
func (s *LaneEnv) After(d time.Duration, fn func()) Timer {
	return simTimer{s.Kernel().After(d, fn)}
}

// Schedule implements Env through the lane kernel's pooled path.
func (s *LaneEnv) Schedule(d time.Duration, fn func()) { s.Kernel().Schedule(d, fn) }

// ScheduleArg implements Env through the lane kernel's closure-free path.
func (s *LaneEnv) ScheduleArg(d time.Duration, fn func(arg any), arg any) {
	s.Kernel().ScheduleArg(d, fn, arg)
}

// Post implements Env.
func (s *LaneEnv) Post(fn func()) { s.Kernel().Schedule(0, fn) }

// Rand implements Env.
func (s *LaneEnv) Rand(name string) *rand.Rand { return s.Kernel().Rand(name) }

// RealEnv executes callbacks on a single dedicated goroutine in wall-clock
// time. Create one with NewReal and release it with Close.
type RealEnv struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
	done   chan struct{}
	seed   int64
}

var _ Env = (*RealEnv)(nil)

// NewReal starts the executor goroutine. seed feeds the named random
// streams so tests against RealEnv can still be made reproducible.
func NewReal(seed int64) *RealEnv {
	e := &RealEnv{done: make(chan struct{}), seed: seed}
	e.cond = sync.NewCond(&e.mu)
	go e.loop()
	return e
}

func (e *RealEnv) loop() {
	defer close(e.done)
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if e.closed && len(e.queue) == 0 {
			e.mu.Unlock()
			return
		}
		fn := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()
		fn()
	}
}

// Now implements Env.
func (e *RealEnv) Now() time.Time { return time.Now() }

// Post implements Env. Posting to a closed env is a no-op.
func (e *RealEnv) Post(fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.queue = append(e.queue, fn)
	e.cond.Signal()
}

// Schedule implements Env. Timers that fire after Close are dropped by
// Post, matching After's behavior.
func (e *RealEnv) Schedule(d time.Duration, fn func()) {
	if d <= 0 {
		e.Post(fn)
		return
	}
	time.AfterFunc(d, func() { e.Post(fn) })
}

// ScheduleArg implements Env. RealEnv is not a hot path, so it simply wraps
// the pair in a closure; the allocation-free contract is SimEnv's.
func (e *RealEnv) ScheduleArg(d time.Duration, fn func(arg any), arg any) {
	e.Schedule(d, func() { fn(arg) })
}

// After implements Env.
func (e *RealEnv) After(d time.Duration, fn func()) Timer {
	rt := &realTimer{}
	rt.t = time.AfterFunc(d, func() {
		rt.mu.Lock()
		if rt.stopped {
			rt.mu.Unlock()
			return
		}
		rt.fired = true
		rt.mu.Unlock()
		e.Post(fn)
	})
	return rt
}

// Rand implements Env.
func (e *RealEnv) Rand(name string) *rand.Rand {
	return rand.New(rand.NewSource(sim.DeriveSeed(e.seed, name)))
}

// Close stops the executor after draining queued callbacks and waits for the
// loop goroutine to exit. Timers that fire after Close are dropped.
func (e *RealEnv) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.done
		return
	}
	e.closed = true
	e.cond.Signal()
	e.mu.Unlock()
	<-e.done
}

// Barrier posts a no-op and waits until the executor has processed it,
// guaranteeing every callback posted before the call has completed. Useful
// in tests.
func (e *RealEnv) Barrier() {
	ch := make(chan struct{})
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.queue = append(e.queue, func() { close(ch) })
	e.cond.Signal()
	e.mu.Unlock()
	<-ch
}

type realTimer struct {
	mu      sync.Mutex
	t       *time.Timer
	stopped bool
	fired   bool
}

func (t *realTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped || t.fired {
		return false
	}
	t.stopped = true
	t.t.Stop()
	return true
}
