package env

import (
	"sync"
	"testing"
	"time"

	"adamant/internal/sim"
)

func TestSimEnvAfterAndNow(t *testing.T) {
	k := sim.New(1)
	e := NewSim(k)
	var seen time.Time
	e.After(25*time.Millisecond, func() { seen = e.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Epoch.Add(25 * time.Millisecond); !seen.Equal(want) {
		t.Errorf("callback saw %v, want %v", seen, want)
	}
}

func TestSimEnvTimerStop(t *testing.T) {
	k := sim.New(1)
	e := NewSim(k)
	fired := false
	tm := e.After(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestSimEnvPostRunsInOrder(t *testing.T) {
	k := sim.New(1)
	e := NewSim(k)
	var order []int
	e.Post(func() { order = append(order, 1) })
	e.Post(func() { order = append(order, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestSimEnvKernelAccessor(t *testing.T) {
	k := sim.New(1)
	if NewSim(k).Kernel() != k {
		t.Error("Kernel() did not return the wrapped kernel")
	}
}

func TestRealEnvPostSerializes(t *testing.T) {
	e := NewReal(1)
	defer e.Close()
	var mu sync.Mutex
	running := 0
	maxRunning := 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		e.Post(func() {
			mu.Lock()
			running++
			if running > maxRunning {
				maxRunning = running
			}
			mu.Unlock()
			time.Sleep(100 * time.Microsecond)
			mu.Lock()
			running--
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	if maxRunning != 1 {
		t.Errorf("observed %d concurrent callbacks, want 1", maxRunning)
	}
}

func TestRealEnvAfterFires(t *testing.T) {
	e := NewReal(1)
	defer e.Close()
	ch := make(chan time.Time, 1)
	start := time.Now()
	e.After(10*time.Millisecond, func() { ch <- time.Now() })
	select {
	case at := <-ch:
		if d := at.Sub(start); d < 5*time.Millisecond {
			t.Errorf("fired after %v, want >= ~10ms", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestRealEnvTimerStop(t *testing.T) {
	e := NewReal(1)
	defer e.Close()
	fired := make(chan struct{}, 1)
	tm := e.After(20*time.Millisecond, func() { fired <- struct{}{} })
	if !tm.Stop() {
		t.Error("Stop returned false on pending timer")
	}
	select {
	case <-fired:
		t.Error("stopped timer fired")
	case <-time.After(60 * time.Millisecond):
	}
}

func TestRealEnvBarrier(t *testing.T) {
	e := NewReal(1)
	defer e.Close()
	done := false
	e.Post(func() { done = true })
	e.Barrier()
	if !done {
		t.Error("Barrier returned before earlier callback completed")
	}
}

func TestRealEnvCloseIdempotent(t *testing.T) {
	e := NewReal(1)
	e.Close()
	e.Close() // must not panic or hang
	e.Post(func() { t.Error("post after close ran") })
	e.Barrier() // no-op after close
}

func TestRealEnvRandDeterministicBySeed(t *testing.T) {
	a := NewReal(7)
	b := NewReal(7)
	defer a.Close()
	defer b.Close()
	ra, rb := a.Rand("x"), b.Rand("x")
	for i := 0; i < 5; i++ {
		if ra.Int63() != rb.Int63() {
			t.Fatal("same seed+name should give identical streams")
		}
	}
}
