package adamant_test

// Repository-level benchmark suite: one benchmark per paper table and
// figure (see DESIGN.md's experiment index), plus end-to-end micro
// benchmarks. Each BenchmarkFigNN regenerates a scaled-down version of the
// corresponding figure's workload and reports its headline series through
// b.ReportMetric, so `go test -bench=.` doubles as a smoke reproduction.
//
// Absolute figure regeneration at paper scale is the adamant-bench
// command's job; these benches keep the workloads small enough to run in a
// normal benchmark session.

import (
	"os"
	"sync"
	"testing"

	"adamant/internal/ann"
	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/experiment"
	"adamant/internal/metrics"
	"adamant/internal/netem"
)

const benchSamples = 500

// benchConfig builds the experiment config for one figure cell.
func benchConfig(fast bool, receivers int, rateHz float64, protoIdx int) experiment.Config {
	machine, bw := netem.PC850, netem.Mbps100
	if fast {
		machine, bw = netem.PC3000, netem.Gbps1
	}
	return experiment.Config{
		Machine:   machine,
		Bandwidth: bw,
		Impl:      dds.ImplB,
		LossPct:   5,
		Receivers: receivers,
		RateHz:    rateHz,
		Samples:   benchSamples,
		Protocol:  core.Candidates()[protoIdx],
		Seed:      1,
	}
}

// runQoSBench executes both figure protocols over the cell b.N times and
// reports the projected metric per protocol.
func runQoSBench(b *testing.B, fast bool, receivers int, rateHz float64,
	field func(metrics.Summary) float64, unit string) {
	b.Helper()
	var nak, ric metrics.Summary
	for i := 0; i < b.N; i++ {
		var err error
		nak, err = experiment.Run(benchConfig(fast, receivers, rateHz, 3))
		if err != nil {
			b.Fatal(err)
		}
		ric, err = experiment.Run(benchConfig(fast, receivers, rateHz, 4))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(field(nak), "nakcast1ms_"+unit)
	b.ReportMetric(field(ric), "ricochetR4C3_"+unit)
}

// runnerBenchConfigs builds a batch of independent runs spanning both
// platforms and both figure protocols, for the serial-vs-parallel engine
// comparison.
func runnerBenchConfigs(n int) []experiment.Config {
	cfgs := make([]experiment.Config, n)
	for i := range cfgs {
		cfgs[i] = benchConfig(i%2 == 0, 3, 25, 3+i%2)
		cfgs[i].Seed = int64(i + 1)
	}
	return cfgs
}

// BenchmarkRunManySerial is the single-worker baseline for the experiment
// engine; BenchmarkRunManyParallel runs the same batch at GOMAXPROCS width.
// Their ratio is the engine's speedup on this machine (results are
// byte-identical either way — see TestBuildDatasetParallelByteIdentical).
func BenchmarkRunManySerial(b *testing.B) {
	cfgs := runnerBenchConfigs(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&experiment.Runner{Jobs: 1}).RunMany(cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunManyParallel(b *testing.B) {
	cfgs := runnerBenchConfigs(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&experiment.Runner{}).RunMany(cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

func relate2(s metrics.Summary) float64    { return s.ReLate2 }
func relate2jit(s metrics.Summary) float64 { return s.ReLate2Jit }
func latency(s metrics.Summary) float64    { return s.AvgLatencyUs }
func jitter(s metrics.Summary) float64     { return s.JitterUs }

func BenchmarkTable1EnvironmentSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(experiment.FullSpace()); got != 1200 {
			b.Fatalf("space = %d", got)
		}
	}
	b.ReportMetric(1200, "combos")
}

func BenchmarkTable2ApplicationSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiment.ApplicationTable().Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig04ReLate2Fast10Hz(b *testing.B) { runQoSBench(b, true, 3, 10, relate2, "relate2") }
func BenchmarkFig04ReLate2Fast25Hz(b *testing.B) { runQoSBench(b, true, 3, 25, relate2, "relate2") }
func BenchmarkFig05ReLate2Slow10Hz(b *testing.B) { runQoSBench(b, false, 3, 10, relate2, "relate2") }
func BenchmarkFig05ReLate2Slow25Hz(b *testing.B) { runQoSBench(b, false, 3, 25, relate2, "relate2") }
func BenchmarkFig06ReliabilityFast(b *testing.B) {
	runQoSBench(b, true, 3, 10, metrics.Summary.Reliability, "pct")
}
func BenchmarkFig07ReliabilitySlow(b *testing.B) {
	runQoSBench(b, false, 3, 10, metrics.Summary.Reliability, "pct")
}
func BenchmarkFig08LatencyFast(b *testing.B)    { runQoSBench(b, true, 3, 10, latency, "us") }
func BenchmarkFig09LatencySlow(b *testing.B)    { runQoSBench(b, false, 3, 10, latency, "us") }
func BenchmarkFig10ReLate2JitFast(b *testing.B) { runQoSBench(b, true, 15, 10, relate2jit, "r2j") }
func BenchmarkFig11ReLate2JitSlow(b *testing.B) { runQoSBench(b, false, 15, 10, relate2jit, "r2j") }
func BenchmarkFig12LatencyFast15(b *testing.B)  { runQoSBench(b, true, 15, 10, latency, "us") }
func BenchmarkFig13LatencySlow15(b *testing.B)  { runQoSBench(b, false, 15, 10, latency, "us") }
func BenchmarkFig14JitterFast15(b *testing.B)   { runQoSBench(b, true, 15, 10, jitter, "us") }
func BenchmarkFig15JitterSlow15(b *testing.B)   { runQoSBench(b, false, 15, 10, jitter, "us") }
func BenchmarkFig16ReliabilityFast15(b *testing.B) {
	runQoSBench(b, true, 15, 10, metrics.Summary.Reliability, "pct")
}
func BenchmarkFig17ReliabilitySlow15(b *testing.B) {
	runQoSBench(b, false, 15, 10, metrics.Summary.Reliability, "pct")
}

// --- ANN figures (18-21) use the committed training set when present. ---

var (
	datasetOnce sync.Once
	datasetRows []experiment.Row
	datasetErr  error
)

func benchRows(b *testing.B) []experiment.Row {
	b.Helper()
	datasetOnce.Do(func() {
		if _, err := os.Stat("data/training.csv"); err == nil {
			datasetRows, datasetErr = experiment.ReadCSVFile("data/training.csv")
			return
		}
		datasetRows, datasetErr = experiment.BuildDataset(experiment.DatasetOptions{
			Combos: 24, Runs: 1, Samples: 300, Seed: 1,
		})
	})
	if datasetErr != nil {
		b.Fatal(datasetErr)
	}
	return datasetRows
}

func benchANNOpts() experiment.ANNOptions {
	return experiment.ANNOptions{
		HiddenSizes:   []int{24},
		TrainsPerSize: 1,
		Folds:         10,
		StopError:     1e-4,
		MaxEpochs:     800,
		Seed:          1,
	}
}

func BenchmarkFig18TrainingAccuracy(b *testing.B) {
	rows := benchRows(b)
	var tab experiment.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = experiment.Figure18(rows, benchANNOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = tab
}

func BenchmarkFig19CrossValidation(b *testing.B) {
	rows := benchRows(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure19(rows, benchANNOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20QueryMean(b *testing.B) {
	rows := benchRows(b)
	timings, err := experiment.QueryTimings(rows, 2, benchANNOpts())
	if err != nil {
		b.Fatal(err)
	}
	// The per-query benchmark: what Figure 20 measures.
	ds := experiment.ToANNDataset(rows)
	net := trainBenchNet(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Classify(ds.Inputs[i%ds.Len()]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(timings[0].MeanUs, "mean_us")
}

func BenchmarkFig21QueryStdDev(b *testing.B) {
	rows := benchRows(b)
	timings, err := experiment.QueryTimings(rows, 2, benchANNOpts())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(timings[0].StdDevUs, "stddev_us")
	for i := 0; i < b.N; i++ {
		_ = timings
	}
}

func trainBenchNet(b *testing.B, ds *ann.Dataset) *ann.Network {
	b.Helper()
	net, err := ann.New(ann.Config{Layers: []int{core.NumInputs, 24, core.NumCandidates}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := net.Train(ds, ann.TrainOptions{MaxEpochs: 300, DesiredError: 1e-4}); err != nil {
		b.Fatal(err)
	}
	return net
}

// BenchmarkANNQuery is the paper's headline timing claim in isolation:
// one configuration decision (<10us with bounded complexity).
func BenchmarkANNQuery(b *testing.B) {
	rows := benchRows(b)
	ds := experiment.ToANNDataset(rows)
	net := trainBenchNet(b, ds)
	in := ds.Inputs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Classify(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkANNRunBatch measures the tiled batch kernel: one full-dataset
// evaluation per iteration (the inner loop of accuracy scoring and
// cross-validation).
func BenchmarkANNRunBatch(b *testing.B) {
	rows := benchRows(b)
	ds := experiment.ToANNDataset(rows)
	net := trainBenchNet(b, ds)
	classes := make([]int, ds.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.ClassifyBatch(ds.Inputs, classes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkANNTrainEpochs measures RPROP training throughput: a fixed
// 30-epoch run per iteration.
func BenchmarkANNTrainEpochs(b *testing.B) {
	rows := benchRows(b)
	ds := experiment.ToANNDataset(rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := ann.New(ann.Config{Layers: []int{core.NumInputs, 24, core.NumCandidates}, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.Train(ds, ann.TrainOptions{MaxEpochs: 30, DesiredError: 1e-12}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndSim measures simulator throughput: one full experiment
// run per iteration.
func BenchmarkEndToEndSim(b *testing.B) {
	cfg := benchConfig(true, 3, 25, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtocolSweep runs every candidate protocol once (the dataset
// generator's inner loop).
func BenchmarkProtocolSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for idx := range core.Candidates() {
			if _, err := experiment.Run(benchConfig(true, 3, 50, idx)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
